package ir

import (
	"errors"
	"strings"
	"testing"

	"renaissance/internal/rvm"
)

// execOne builds a one-function IR program directly and runs it.
func execOne(t *testing.T, classes []*rvm.Class, build func(f *Func)) (rvm.Value, error) {
	t.Helper()
	f := &Func{Name: "Main.main", NArgs: 0, NRegs: 8}
	b := f.NewBlock()
	f.Entry = b
	build(f)
	prog := &Program{
		Funcs:   map[string]*Func{"Main.main": f},
		Classes: map[string]*rvm.Class{},
		Entry:   "Main.main",
	}
	for _, c := range classes {
		prog.Classes[c.Name] = c
	}
	return NewExec(prog).Run()
}

func ins(op Op, dst, a, b, c Reg) *Instr {
	return &Instr{Op: op, Dst: dst, A: a, B: b, C: c}
}

func TestExecErrNoEntry(t *testing.T) {
	p := &Program{Funcs: map[string]*Func{}, Entry: "nope"}
	if _, err := NewExec(p).Run(); err == nil {
		t.Error("missing entry accepted")
	}
	if _, err := NewExec(p).Call("ghost"); err == nil {
		t.Error("missing function accepted")
	}
}

func TestExecNullTraps(t *testing.T) {
	cell := rvm.NewClass("Cell", nil, "x")
	cases := []struct {
		name  string
		build func(f *Func)
	}{
		{"getfield", func(f *Func) {
			gf := ins(OpGetField, 1, 0, NoReg, NoReg)
			gf.Sym = "x"
			f.Entry.Code = append(f.Entry.Code, gf)
			f.Entry.Term = Terminator{Kind: TermReturn, Ret: 1, Cond: NoReg}
		}},
		{"aload", func(f *Func) {
			f.Entry.Code = append(f.Entry.Code, ins(OpALoad, 1, 0, 2, NoReg))
			f.Entry.Term = Terminator{Kind: TermReturn, Ret: 1, Cond: NoReg}
		}},
		{"astore", func(f *Func) {
			f.Entry.Code = append(f.Entry.Code, ins(OpAStore, NoReg, 0, 1, 2))
			f.Entry.Term = Terminator{Kind: TermReturnVoid, Ret: NoReg, Cond: NoReg}
		}},
		{"arraylen", func(f *Func) {
			f.Entry.Code = append(f.Entry.Code, ins(OpArrayLen, 1, 0, NoReg, NoReg))
			f.Entry.Term = Terminator{Kind: TermReturn, Ret: 1, Cond: NoReg}
		}},
		{"monitor", func(f *Func) {
			f.Entry.Code = append(f.Entry.Code, ins(OpMonitorEnter, NoReg, 0, NoReg, NoReg))
			f.Entry.Term = Terminator{Kind: TermReturnVoid, Ret: NoReg, Cond: NoReg}
		}},
		{"cas", func(f *Func) {
			cas := ins(OpCAS, 1, 0, 2, 3)
			cas.Sym = "x"
			f.Entry.Code = append(f.Entry.Code, cas)
			f.Entry.Term = Terminator{Kind: TermReturn, Ret: 1, Cond: NoReg}
		}},
		{"atomicadd", func(f *Func) {
			aa := ins(OpAtomicAdd, 1, 0, 2, NoReg)
			aa.Sym = "x"
			f.Entry.Code = append(f.Entry.Code, aa)
			f.Entry.Term = Terminator{Kind: TermReturn, Ret: 1, Cond: NoReg}
		}},
		{"callhandle", func(f *Func) {
			ch := ins(OpCallHandle, 1, 0, NoReg, NoReg)
			f.Entry.Code = append(f.Entry.Code, ch)
			f.Entry.Term = Terminator{Kind: TermReturn, Ret: 1, Cond: NoReg}
		}},
		{"callvirt-null", func(f *Func) {
			cv := ins(OpCallVirt, 1, NoReg, NoReg, NoReg)
			cv.Sym = "m"
			cv.Args = []Reg{0}
			f.Entry.Code = append(f.Entry.Code, cv)
			f.Entry.Term = Terminator{Kind: TermReturn, Ret: 1, Cond: NoReg}
		}},
	}
	for _, c := range cases {
		_, err := execOne(t, []*rvm.Class{cell}, c.build)
		if !errors.Is(err, rvm.ErrNullPointer) {
			t.Errorf("%s: err = %v, want null pointer", c.name, err)
		}
	}
}

func TestExecMissingSymbols(t *testing.T) {
	_, err := execOne(t, nil, func(f *Func) {
		n := ins(OpNew, 1, NoReg, NoReg, NoReg)
		n.Sym = "Ghost"
		f.Entry.Code = append(f.Entry.Code, n)
		f.Entry.Term = Terminator{Kind: TermReturn, Ret: 1, Cond: NoReg}
	})
	if !errors.Is(err, rvm.ErrNoSuchClass) {
		t.Errorf("new err = %v", err)
	}

	_, err = execOne(t, nil, func(f *Func) {
		call := ins(OpCallStatic, 1, NoReg, NoReg, NoReg)
		call.Sym = "Main.ghost"
		f.Entry.Code = append(f.Entry.Code, call)
		f.Entry.Term = Terminator{Kind: TermReturn, Ret: 1, Cond: NoReg}
	})
	if !errors.Is(err, rvm.ErrNoSuchMethod) {
		t.Errorf("call err = %v", err)
	}

	cell := rvm.NewClass("Cell", nil, "x")
	_, err = execOne(t, []*rvm.Class{cell}, func(f *Func) {
		n := ins(OpNew, 0, NoReg, NoReg, NoReg)
		n.Sym = "Cell"
		gf := ins(OpGetField, 1, 0, NoReg, NoReg)
		gf.Sym = "missing"
		f.Entry.Code = append(f.Entry.Code, n, gf)
		f.Entry.Term = Terminator{Kind: TermReturn, Ret: 1, Cond: NoReg}
	})
	if !errors.Is(err, rvm.ErrNoSuchField) {
		t.Errorf("field err = %v", err)
	}

	_, err = execOne(t, nil, func(f *Func) {
		mh := ins(OpMakeHandle, 0, NoReg, NoReg, NoReg)
		mh.Sym = "Ghost.m"
		f.Entry.Code = append(f.Entry.Code, mh)
		f.Entry.Term = Terminator{Kind: TermReturn, Ret: 0, Cond: NoReg}
	})
	if !errors.Is(err, rvm.ErrNoSuchClass) {
		t.Errorf("handle err = %v", err)
	}
}

func TestExecBoundsAndDiv(t *testing.T) {
	_, err := execOne(t, nil, func(f *Func) {
		c := ins(OpConst, 0, NoReg, NoReg, NoReg)
		c.Val = rvm.Int(4)
		arr := ins(OpNewArray, 1, 0, NoReg, NoReg)
		idx := ins(OpConst, 2, NoReg, NoReg, NoReg)
		idx.Val = rvm.Int(9)
		ld := ins(OpALoad, 3, 1, 2, NoReg)
		f.Entry.Code = append(f.Entry.Code, c, arr, idx, ld)
		f.Entry.Term = Terminator{Kind: TermReturn, Ret: 3, Cond: NoReg}
	})
	if !errors.Is(err, rvm.ErrBounds) {
		t.Errorf("bounds err = %v", err)
	}

	_, err = execOne(t, nil, func(f *Func) {
		one := ins(OpConst, 0, NoReg, NoReg, NoReg)
		one.Val = rvm.Int(1)
		zero := ins(OpConst, 1, NoReg, NoReg, NoReg)
		zero.Val = rvm.Int(0)
		div := ins(OpDiv, 2, 0, 1, NoReg)
		f.Entry.Code = append(f.Entry.Code, one, zero, div)
		f.Entry.Term = Terminator{Kind: TermReturn, Ret: 2, Cond: NoReg}
	})
	if !errors.Is(err, rvm.ErrDivByZero) {
		t.Errorf("div err = %v", err)
	}
}

func TestExecFuel(t *testing.T) {
	f := &Func{Name: "Main.main", NArgs: 0, NRegs: 1}
	b := f.NewBlock()
	f.Entry = b
	b.Term = Terminator{Kind: TermJump, To: b, Cond: NoReg, Ret: NoReg}
	prog := &Program{Funcs: map[string]*Func{"Main.main": f}, Entry: "Main.main"}
	e := NewExec(prog)
	e.Fuel = 500
	if _, err := e.Run(); !errors.Is(err, rvm.ErrFuelExhausted) {
		t.Errorf("fuel err = %v", err)
	}
}

func TestExecCheckCastTrap(t *testing.T) {
	x := rvm.NewClass("X", nil)
	y := rvm.NewClass("Y", nil)
	_, err := execOne(t, []*rvm.Class{x, y}, func(f *Func) {
		n := ins(OpNew, 0, NoReg, NoReg, NoReg)
		n.Sym = "X"
		cc := ins(OpCheckCast, 1, 0, NoReg, NoReg)
		cc.Sym = "Y"
		f.Entry.Code = append(f.Entry.Code, n, cc)
		f.Entry.Term = Terminator{Kind: TermReturn, Ret: 1, Cond: NoReg}
	})
	if !errors.Is(err, rvm.ErrBadCast) {
		t.Errorf("cast err = %v", err)
	}
}

func TestExecCalibratedMatchesUncalibrated(t *testing.T) {
	// Calibration changes timing, never results or cycle counts.
	a := rvm.NewAsm()
	a.ConstInt(0).Store(1)
	a.ConstInt(0).Store(2)
	a.Label("h")
	a.Load(2).ConstInt(200).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "x")
	a.Load(1).Load(2).Op(rvm.OpAdd).Store(1)
	a.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "h")
	a.Label("x")
	a.Load(1).Op(rvm.OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	p := rvm.NewProgram()
	mainC := rvm.NewClass("Main", nil)
	mainC.AddMethod(m)
	_ = p.AddClass(mainC)
	p.Entry = m

	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewExec(prog)
	v1, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	cal := NewExec(prog)
	cal.Calibrated = true
	v2, err := cal.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Equal(v2) || plain.Stats.Cycles != cal.Stats.Cycles {
		t.Errorf("calibration changed semantics: %v/%d vs %v/%d",
			v1, plain.Stats.Cycles, v2, cal.Stats.Cycles)
	}
}

func TestInstrStringAndOpName(t *testing.T) {
	in := ins(OpAdd, 1, 2, 3, NoReg)
	if s := in.String(); !strings.Contains(s, "add") || !strings.Contains(s, "r1") {
		t.Errorf("instr string = %q", s)
	}
	if Op(999).String() == "" {
		t.Error("out-of-range op name empty")
	}
	vec := ins(OpVecArith, 1, 2, 3, 4)
	vec.ArithOp = OpMul
	if s := vec.String(); !strings.Contains(s, "vecarith") || !strings.Contains(s, "mul") {
		t.Errorf("vec string = %q", s)
	}
}
