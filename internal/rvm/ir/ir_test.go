package ir

import (
	"errors"
	"testing"

	"renaissance/internal/rvm"
)

// buildAndExec compiles the bytecode program to IR and runs both
// interpreters, asserting agreement (the differential oracle used
// throughout the opt package as well).
func buildAndExec(t *testing.T, p *rvm.Program, args ...rvm.Value) (rvm.Value, *Stats) {
	t.Helper()
	want, werr := rvm.NewInterp(p).Run(args...)
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatalf("BuildProgram: %v", err)
	}
	e := NewExec(prog)
	got, gerr := e.Run(args...)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("error mismatch: bytecode=%v ir=%v", werr, gerr)
	}
	if werr != nil {
		return rvm.Null(), e.Stats
	}
	if !got.Equal(want) {
		t.Fatalf("value mismatch: bytecode=%v ir=%v", want, got)
	}
	return got, e.Stats
}

func mainProgram(t *testing.T, entry *rvm.Method, extra ...*rvm.Method) *rvm.Program {
	t.Helper()
	p := rvm.NewProgram()
	main := rvm.NewClass("Main", nil)
	entry.Static = true
	main.AddMethod(entry)
	for _, m := range extra {
		m.Static = true
		main.AddMethod(m)
	}
	if err := p.AddClass(main); err != nil {
		t.Fatal(err)
	}
	p.Entry = entry
	return p
}

func TestBuildArithLoop(t *testing.T) {
	a := rvm.NewAsm()
	a.ConstInt(0).Store(1)
	a.ConstInt(0).Store(2)
	a.Label("head")
	a.Load(2).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Load(1).Load(2).Load(2).Op(rvm.OpMul).Op(rvm.OpAdd).Store(1)
	a.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(1).Op(rvm.OpReturn)
	p := mainProgram(t, a.MustBuild("main", 1))
	v, stats := buildAndExec(t, p, rvm.Int(50))
	want := int64(0)
	for i := int64(0); i < 50; i++ {
		want += i * i
	}
	if v.AsInt() != want {
		t.Errorf("sum of squares = %v, want %d", v, want)
	}
	if stats.Cycles <= 0 {
		t.Error("no cycles charged")
	}
}

func TestBuildObjectsArraysGuards(t *testing.T) {
	p := rvm.NewProgram()
	cell := rvm.NewClass("Cell", nil, "v")
	if err := p.AddClass(cell); err != nil {
		t.Fatal(err)
	}
	a := rvm.NewAsm()
	a.Sym(rvm.OpNew, "Cell").Store(0)
	a.Load(0).ConstInt(11).Sym(rvm.OpPutField, "v")
	a.ConstInt(4).Op(rvm.OpNewArray).Store(1)
	a.Load(1).ConstInt(2).Load(0).Sym(rvm.OpGetField, "v").Op(rvm.OpAStore)
	a.Load(1).ConstInt(2).Op(rvm.OpALoad)
	a.Load(1).Op(rvm.OpArrayLen).Op(rvm.OpAdd).Op(rvm.OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := rvm.NewClass("Main", nil)
	mainC.AddMethod(m)
	_ = p.AddClass(mainC)
	p.Entry = m
	v, stats := buildAndExec(t, p)
	if v.AsInt() != 15 {
		t.Errorf("result = %v", v)
	}
	if stats.GuardsExecuted["NullCheck"] == 0 || stats.GuardsExecuted["BoundsCheck"] == 0 {
		t.Errorf("guards = %v, want null and bounds checks", stats.GuardsExecuted)
	}
}

func TestBuildCalls(t *testing.T) {
	add := rvm.NewAsm()
	add.Load(0).Load(1).Op(rvm.OpAdd).Op(rvm.OpReturn)

	a := rvm.NewAsm()
	a.ConstInt(20).ConstInt(22).Invoke(rvm.OpInvokeStatic, "Main.add2", 2).Op(rvm.OpReturn)
	p := mainProgram(t, a.MustBuild("main", 0), add.MustBuild("add2", 2))
	if v, _ := buildAndExec(t, p); v.AsInt() != 42 {
		t.Errorf("result = %v", v)
	}
}

func TestBuildVirtualCall(t *testing.T) {
	p := rvm.NewProgram()
	base := rvm.NewClass("Base", nil)
	bm := rvm.NewAsm()
	bm.ConstInt(10).Op(rvm.OpReturn)
	base.AddMethod(bm.MustBuild("get", 1))
	derived := rvm.NewClass("Derived", base)
	dm := rvm.NewAsm()
	dm.ConstInt(20).Op(rvm.OpReturn)
	derived.AddMethod(dm.MustBuild("get", 1))
	_ = p.AddClass(base)
	_ = p.AddClass(derived)

	a := rvm.NewAsm()
	a.Sym(rvm.OpNew, "Derived").Invoke(rvm.OpInvokeVirtual, "get", 1)
	a.Sym(rvm.OpNew, "Base").Invoke(rvm.OpInvokeVirtual, "get", 1)
	a.Op(rvm.OpAdd).Op(rvm.OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := rvm.NewClass("Main", nil)
	mainC.AddMethod(m)
	_ = p.AddClass(mainC)
	p.Entry = m
	if v, _ := buildAndExec(t, p); v.AsInt() != 30 {
		t.Errorf("result = %v", v)
	}
}

func TestBuildHandle(t *testing.T) {
	twice := rvm.NewAsm()
	twice.Load(0).ConstInt(2).Op(rvm.OpMul).Op(rvm.OpReturn)
	a := rvm.NewAsm()
	a.Sym(rvm.OpInvokeDynamic, "Main.twice").ConstInt(21).Invoke(rvm.OpInvokeHandle, "", 1).Op(rvm.OpReturn)
	p := mainProgram(t, a.MustBuild("main", 0), twice.MustBuild("twice", 1))
	if v, _ := buildAndExec(t, p); v.AsInt() != 42 {
		t.Errorf("result = %v", v)
	}
}

func TestBuildCASAndAtomics(t *testing.T) {
	p := rvm.NewProgram()
	cell := rvm.NewClass("Cell", nil, "v")
	_ = p.AddClass(cell)
	a := rvm.NewAsm()
	a.Sym(rvm.OpNew, "Cell").Store(0)
	a.Load(0).ConstInt(0).Sym(rvm.OpPutField, "v")
	a.Load(0).ConstInt(0).ConstInt(5).Sym(rvm.OpCAS, "v").Op(rvm.OpPop)
	a.Load(0).ConstInt(3).Sym(rvm.OpAtomicAdd, "v").Op(rvm.OpPop)
	a.Load(0).Op(rvm.OpMonitorEnter)
	a.Load(0).Sym(rvm.OpGetField, "v").Store(1)
	a.Load(0).Op(rvm.OpMonitorExit)
	a.Load(1).Op(rvm.OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := rvm.NewClass("Main", nil)
	mainC.AddMethod(m)
	_ = p.AddClass(mainC)
	p.Entry = m
	v, stats := buildAndExec(t, p)
	if v.AsInt() != 8 {
		t.Errorf("result = %v, want 8", v)
	}
	if stats.Ops[OpCAS] != 1 || stats.Ops[OpAtomicAdd] != 1 || stats.Ops[OpMonitorEnter] != 1 {
		t.Errorf("op counts: cas=%d atomicadd=%d enter=%d",
			stats.Ops[OpCAS], stats.Ops[OpAtomicAdd], stats.Ops[OpMonitorEnter])
	}
}

func TestBuildInstanceOfChain(t *testing.T) {
	p := rvm.NewProgram()
	x := rvm.NewClass("X", nil)
	y := rvm.NewClass("Y", x)
	_ = p.AddClass(x)
	_ = p.AddClass(y)
	a := rvm.NewAsm()
	a.Sym(rvm.OpNew, "Y").Store(0)
	a.Load(0).Sym(rvm.OpInstanceOf, "X").Jump(rvm.OpJumpIfNot, "no")
	a.ConstInt(1).Op(rvm.OpReturn)
	a.Label("no")
	a.ConstInt(0).Op(rvm.OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := rvm.NewClass("Main", nil)
	mainC.AddMethod(m)
	_ = p.AddClass(mainC)
	p.Entry = m
	if v, _ := buildAndExec(t, p); v.AsInt() != 1 {
		t.Errorf("result = %v", v)
	}
}

func TestDeoptOnBadBounds(t *testing.T) {
	a := rvm.NewAsm()
	a.ConstInt(2).Op(rvm.OpNewArray).Store(0)
	a.Load(0).ConstInt(9).Op(rvm.OpALoad).Op(rvm.OpReturn)
	p := mainProgram(t, a.MustBuild("main", 0))
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewExec(prog).Run()
	if !errors.Is(err, ErrDeopt) {
		t.Errorf("err = %v, want deopt", err)
	}
}

func TestDominatorsAndLoops(t *testing.T) {
	// A simple counted loop: entry -> header -> body -> header / exit.
	a := rvm.NewAsm()
	a.ConstInt(0).Store(1)
	a.Label("head")
	a.Load(1).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Load(1).ConstInt(1).Op(rvm.OpAdd).Store(1)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(1).Op(rvm.OpReturn)
	p := mainProgram(t, a.MustBuild("main", 1))
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs["Main.main"]

	loops := FindLoops(f)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1:\n%s", len(loops), f)
	}
	l := loops[0]
	if len(l.Blocks) < 2 {
		t.Errorf("loop body = %d blocks", len(l.Blocks))
	}
	if len(l.Latches) != 1 {
		t.Errorf("latches = %d", len(l.Latches))
	}

	dom := Dominators(f)
	if !dom[l.Header][f.Entry] {
		t.Error("entry should dominate loop header")
	}
	for b := range l.Blocks {
		if !dom[b][l.Header] {
			t.Error("header should dominate loop body")
		}
	}
}

func TestDefCountsAndLiveness(t *testing.T) {
	a := rvm.NewAsm()
	a.ConstInt(1).Store(1)
	a.ConstInt(2).Store(1) // second def of local 1
	a.Load(1).Op(rvm.OpReturn)
	p := mainProgram(t, a.MustBuild("main", 0))
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs["Main.main"]
	counts := DefCounts(f)
	if counts[1] != 2 {
		t.Errorf("defs of r1 = %d, want 2", counts[1])
	}
	live := Liveness(f)
	// r1 must be live out of nothing (single block) but present in the
	// analysis structures.
	if live == nil {
		t.Fatal("nil liveness")
	}
}

func TestFuncSizeAndString(t *testing.T) {
	a := rvm.NewAsm()
	a.ConstInt(1).ConstInt(2).Op(rvm.OpAdd).Op(rvm.OpReturn)
	p := mainProgram(t, a.MustBuild("main", 0))
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs["Main.main"]
	if f.Size() < 4 {
		t.Errorf("size = %d", f.Size())
	}
	if s := f.String(); s == "" {
		t.Error("empty printer output")
	}
}

func TestEmptyMethod(t *testing.T) {
	m := &rvm.Method{Name: "empty", NArgs: 0, NLocals: 0}
	f, err := BuildFunc(m)
	if err != nil {
		t.Fatal(err)
	}
	if f.Entry == nil || f.Entry.Term.Kind != TermReturnVoid {
		t.Error("empty method should return void")
	}
}

func TestStackDepthMismatchDetected(t *testing.T) {
	// Craft bytecode where a join point is reached with different stack
	// depths: push in one path only.
	code := []rvm.Instr{
		{Op: rvm.OpLoad, A: 0},
		{Op: rvm.OpJumpIf, A: 3}, // to pc 3 with depth 0
		{Op: rvm.OpConstInt, I: 1},
		// pc 3: join — depth 0 from branch, 1 from fallthrough
		{Op: rvm.OpConstInt, I: 2},
		{Op: rvm.OpReturn},
	}
	m := &rvm.Method{Name: "bad", NArgs: 1, NLocals: 1, Code: code}
	if _, err := BuildFunc(m); err == nil {
		t.Error("inconsistent stack depth not detected")
	}
}
