package ir

import (
	"errors"
	"fmt"
	"strings"

	"renaissance/internal/rvm"
)

// Cost model: deterministic cycle costs per instruction kind, standing in
// for the paper's reference-cycle measurements. The relative magnitudes
// follow conventional micro-architectural estimates: atomic and monitor
// operations are tens of cycles (they imply fenced read-modify-writes),
// calls carry frame overhead plus indirect-dispatch penalties, guards are
// cheap compares, and the vector unit amortizes one operation over four
// lanes.
const (
	CostArith      = 1
	CostMul        = 3
	CostDiv        = 20
	CostCmp        = 1
	CostMove       = 1
	CostConst      = 1
	CostLoad       = 4 // L1-hit memory access
	CostStore      = 4
	CostNew        = 18
	CostNewArray   = 18
	CostGuard      = 2
	CostCallStatic = 14
	CostCallVirt   = 24 // vtable dispatch
	CostCallHandle = 32 // polymorphic method-handle invocation
	CostMakeHandle = 15
	CostMonitorOp  = 20
	CostCAS        = 16
	CostScalarCAS  = 2 // scalar-replaced CAS: compare + move
	CostAtomicAdd  = 16
	CostPark       = 60
	CostWaitNotify = 30
	CostInstanceOf = 4
	CostCheckCast  = 4
	CostBranch     = 1
	CostVecArith   = 6 // 4 lanes: 2 vector loads + op + store amortized
	CostArrayLen   = 2
	CostReturn     = 2
)

// ErrDeopt is returned when a guard fails (the deoptimization path; the
// experiments are constructed never to deoptimize).
var ErrDeopt = errors.New("ir: guard failed (deoptimization)")

// Stats accumulates execution statistics of one IR run.
type Stats struct {
	Cycles   int64
	Executed int64
	// GuardsExecuted counts guard executions by kind, reproducing the
	// §5.5 guard table ("NullCheckException", "BoundsCheckException",
	// plus their hoisted Speculative variants).
	GuardsExecuted map[string]int64
	// FuncCalls counts invocations per function (hot-method detection).
	FuncCalls map[string]int64
	// FuncCycles attributes cycles to the function that spent them
	// (the §5.4 per-method profile).
	FuncCycles map[string]int64
	// Ops counts executed instructions per opcode.
	Ops [numOps]int64
}

func newStats() *Stats {
	return &Stats{
		GuardsExecuted: make(map[string]int64),
		FuncCalls:      make(map[string]int64),
		FuncCycles:     make(map[string]int64),
	}
}

// MemTracer observes memory accesses (the cache simulator hook).
type MemTracer interface {
	// Access is called with a stable object identity, an element/field
	// index, and whether the access writes.
	Access(obj *rvm.Object, index int, write bool)
}

// Exec executes IR programs under the cost model.
type Exec struct {
	Prog *Program
	// Fuel bounds executed instructions (0 = 500M).
	Fuel int64
	// Tracer, when set, receives memory accesses (used for cache-miss
	// profiling; nil during timing runs to keep the interpreter fast).
	Tracer MemTracer
	// Calibrated makes execution time proportional to charged cycles: the
	// executor spins for every cycle it charges, so wall-clock timings of
	// calibrated runs measure the cost model with genuine OS-level noise.
	// The paper's Welch significance tests run against such timings.
	Calibrated bool

	Stats    *Stats
	fuel     int64
	spinSink uint64
}

// spinPerCycle is the number of spin-loop iterations per charged cycle,
// chosen so that the spin dominates the interpreter's per-instruction
// dispatch overhead — wall time of a calibrated run is then proportional
// to modeled cycles, not to instruction count.
const spinPerCycle = 24

// spin burns time proportional to c charged cycles. The sink defeats
// dead-code elimination of the loop.
func (e *Exec) spin(c int64) {
	s := e.spinSink
	for i := int64(0); i < c*spinPerCycle; i++ {
		s = s*2862933555777941757 + 3037000493
	}
	e.spinSink = s
}

// NewExec creates an executor.
func NewExec(p *Program) *Exec {
	return &Exec{Prog: p, Stats: newStats()}
}

// Run executes the program entry function.
func (e *Exec) Run(args ...rvm.Value) (rvm.Value, error) {
	f, ok := e.Prog.Func(e.Prog.Entry)
	if !ok {
		return rvm.Null(), fmt.Errorf("ir: no entry function %q", e.Prog.Entry)
	}
	e.fuel = e.Fuel
	if e.fuel == 0 {
		e.fuel = 500_000_000
	}
	return e.call(f, args, 0)
}

// Call executes a named function.
func (e *Exec) Call(name string, args ...rvm.Value) (rvm.Value, error) {
	f, ok := e.Prog.Func(name)
	if !ok {
		return rvm.Null(), fmt.Errorf("ir: no function %q", name)
	}
	e.fuel = e.Fuel
	if e.fuel == 0 {
		e.fuel = 500_000_000
	}
	return e.call(f, args, 0)
}

const maxDepth = 512

func (e *Exec) call(f *Func, args []rvm.Value, depth int) (rvm.Value, error) {
	if depth > maxDepth {
		return rvm.Null(), fmt.Errorf("ir: call depth exceeded in %s", f.Name)
	}
	if len(args) != f.NArgs {
		return rvm.Null(), fmt.Errorf("ir: %s expects %d args, got %d", f.Name, f.NArgs, len(args))
	}
	e.Stats.FuncCalls[f.Name]++
	regs := make([]rvm.Value, f.NRegs)
	copy(regs, args)

	charge := func(c int64) {
		e.Stats.Cycles += c
		e.Stats.FuncCycles[f.Name] += c
		if e.Calibrated {
			e.spin(c)
		}
	}

	b := f.Entry
	for {
		for _, in := range b.Code {
			e.fuel--
			if e.fuel < 0 {
				return rvm.Null(), rvm.ErrFuelExhausted
			}
			e.Stats.Executed++
			e.Stats.Ops[in.Op]++
			switch in.Op {
			case OpConst:
				regs[in.Dst] = in.Val
				charge(CostConst)
			case OpMove:
				regs[in.Dst] = regs[in.A]
				charge(CostMove)

			case OpAdd, OpSub, OpMul, OpDiv, OpRem:
				v, err := evalArith(in.Op, regs[in.A], regs[in.B])
				if err != nil {
					return rvm.Null(), err
				}
				regs[in.Dst] = v
				switch in.Op {
				case OpMul:
					charge(CostMul)
				case OpDiv, OpRem:
					charge(CostDiv)
				default:
					charge(CostArith)
				}
			case OpNeg:
				a := regs[in.A]
				if a.Kind() == rvm.KindFloat {
					regs[in.Dst] = rvm.Float(-a.AsFloat())
				} else {
					regs[in.Dst] = rvm.Int(-a.AsInt())
				}
				charge(CostArith)
			case OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE, OpCmpEQ, OpCmpNE:
				regs[in.Dst] = evalCmp(in.Op, regs[in.A], regs[in.B])
				charge(CostCmp)

			case OpNew:
				c, ok := e.Prog.Classes[in.Sym]
				if !ok {
					return rvm.Null(), fmt.Errorf("%w: %s", rvm.ErrNoSuchClass, in.Sym)
				}
				regs[in.Dst] = rvm.Ref(rvm.NewObject(c))
				charge(CostNew)
			case OpGetField:
				obj := regs[in.A].AsRef()
				if obj == nil {
					return rvm.Null(), fmt.Errorf("%w: getfield %s in %s", rvm.ErrNullPointer, in.Sym, f.Name)
				}
				idx, ok := obj.Class.FieldIndex(in.Sym)
				if !ok {
					return rvm.Null(), fmt.Errorf("%w: %s.%s", rvm.ErrNoSuchField, obj.Class.Name, in.Sym)
				}
				if e.Tracer != nil {
					e.Tracer.Access(obj, idx, false)
				}
				regs[in.Dst] = obj.Fields[idx]
				charge(CostLoad)
			case OpPutField:
				obj := regs[in.A].AsRef()
				if obj == nil {
					return rvm.Null(), fmt.Errorf("%w: putfield %s", rvm.ErrNullPointer, in.Sym)
				}
				idx, ok := obj.Class.FieldIndex(in.Sym)
				if !ok {
					return rvm.Null(), fmt.Errorf("%w: %s.%s", rvm.ErrNoSuchField, obj.Class.Name, in.Sym)
				}
				if e.Tracer != nil {
					e.Tracer.Access(obj, idx, true)
				}
				obj.Fields[idx] = regs[in.B]
				charge(CostStore)
			case OpNewArray:
				n := regs[in.A].AsInt()
				if n < 0 {
					return rvm.Null(), fmt.Errorf("ir: negative array size %d", n)
				}
				regs[in.Dst] = rvm.Ref(rvm.NewArray(int(n)))
				charge(CostNewArray + n/8)
			case OpALoad:
				obj := regs[in.A].AsRef()
				if obj == nil {
					return rvm.Null(), fmt.Errorf("%w: aload", rvm.ErrNullPointer)
				}
				i := regs[in.B].AsInt()
				if i < 0 || i >= int64(len(obj.Elems)) {
					return rvm.Null(), fmt.Errorf("%w: %d of %d", rvm.ErrBounds, i, len(obj.Elems))
				}
				if e.Tracer != nil {
					e.Tracer.Access(obj, int(i), false)
				}
				regs[in.Dst] = obj.Elems[i]
				charge(CostLoad)
			case OpAStore:
				obj := regs[in.A].AsRef()
				if obj == nil {
					return rvm.Null(), fmt.Errorf("%w: astore", rvm.ErrNullPointer)
				}
				i := regs[in.B].AsInt()
				if i < 0 || i >= int64(len(obj.Elems)) {
					return rvm.Null(), fmt.Errorf("%w: %d of %d", rvm.ErrBounds, i, len(obj.Elems))
				}
				if e.Tracer != nil {
					e.Tracer.Access(obj, int(i), true)
				}
				obj.Elems[i] = regs[in.C]
				charge(CostStore)
			case OpArrayLen:
				obj := regs[in.A].AsRef()
				if obj == nil {
					return rvm.Null(), fmt.Errorf("%w: arraylen", rvm.ErrNullPointer)
				}
				regs[in.Dst] = rvm.Int(int64(len(obj.Elems)))
				charge(CostArrayLen)

			case OpCallStatic:
				callee, ok := e.Prog.Func(in.Sym)
				if !ok {
					return rvm.Null(), fmt.Errorf("%w: %s", rvm.ErrNoSuchMethod, in.Sym)
				}
				charge(CostCallStatic)
				ret, err := e.call(callee, e.gatherArgs(regs, in.Args), depth+1)
				if err != nil {
					return rvm.Null(), err
				}
				regs[in.Dst] = ret
			case OpCallVirt:
				if len(in.Args) == 0 {
					return rvm.Null(), fmt.Errorf("ir: virtual call with no receiver")
				}
				recv := regs[in.Args[0]].AsRef()
				if recv == nil {
					return rvm.Null(), fmt.Errorf("%w: callvirt %s", rvm.ErrNullPointer, in.Sym)
				}
				m, ok := recv.Class.ResolveMethod(in.Sym)
				if !ok {
					return rvm.Null(), fmt.Errorf("%w: %s.%s", rvm.ErrNoSuchMethod, recv.Class.Name, in.Sym)
				}
				callee, ok := e.Prog.Func(m.QualifiedName())
				if !ok {
					return rvm.Null(), fmt.Errorf("%w: no IR for %s", rvm.ErrNoSuchMethod, m.QualifiedName())
				}
				charge(CostCallVirt)
				ret, err := e.call(callee, e.gatherArgs(regs, in.Args), depth+1)
				if err != nil {
					return rvm.Null(), err
				}
				regs[in.Dst] = ret
			case OpMakeHandle:
				callee, err := e.resolveHandle(in.Sym)
				if err != nil {
					return rvm.Null(), err
				}
				regs[in.Dst] = rvm.Handle(callee)
				charge(CostMakeHandle)
			case OpCallHandle:
				h := regs[in.A].AsHandle()
				if h == nil {
					return rvm.Null(), fmt.Errorf("%w: callhandle", rvm.ErrNullPointer)
				}
				callee, ok := e.Prog.Func(h.QualifiedName())
				if !ok {
					return rvm.Null(), fmt.Errorf("%w: no IR for %s", rvm.ErrNoSuchMethod, h.QualifiedName())
				}
				charge(CostCallHandle)
				ret, err := e.call(callee, e.gatherArgs(regs, in.Args), depth+1)
				if err != nil {
					return rvm.Null(), err
				}
				regs[in.Dst] = ret

			case OpMonitorEnter, OpMonitorExit:
				obj := regs[in.A].AsRef()
				if obj == nil {
					return rvm.Null(), fmt.Errorf("%w: monitor", rvm.ErrNullPointer)
				}
				charge(CostMonitorOp)
			case OpCAS:
				obj := regs[in.A].AsRef()
				if obj == nil {
					return rvm.Null(), fmt.Errorf("%w: cas %s", rvm.ErrNullPointer, in.Sym)
				}
				idx, ok := obj.Class.FieldIndex(in.Sym)
				if !ok {
					return rvm.Null(), fmt.Errorf("%w: %s.%s", rvm.ErrNoSuchField, obj.Class.Name, in.Sym)
				}
				if e.Tracer != nil {
					e.Tracer.Access(obj, idx, true)
				}
				charge(CostCAS)
				if obj.Fields[idx].Equal(regs[in.B]) {
					obj.Fields[idx] = regs[in.C]
					regs[in.Dst] = rvm.Int(1)
				} else {
					regs[in.Dst] = rvm.Int(0)
				}
			case OpScalarCAS:
				// Scalar-replaced CAS after escape analysis: register A
				// plays the field, B the expected value, C the new value.
				charge(CostScalarCAS)
				if regs[in.A].Equal(regs[in.B]) {
					regs[in.A] = regs[in.C]
					regs[in.Dst] = rvm.Int(1)
				} else {
					regs[in.Dst] = rvm.Int(0)
				}
			case OpAtomicAdd:
				obj := regs[in.A].AsRef()
				if obj == nil {
					return rvm.Null(), fmt.Errorf("%w: atomicadd %s", rvm.ErrNullPointer, in.Sym)
				}
				idx, ok := obj.Class.FieldIndex(in.Sym)
				if !ok {
					return rvm.Null(), fmt.Errorf("%w: %s.%s", rvm.ErrNoSuchField, obj.Class.Name, in.Sym)
				}
				charge(CostAtomicAdd)
				old := obj.Fields[idx]
				obj.Fields[idx] = rvm.Int(old.AsInt() + regs[in.B].AsInt())
				regs[in.Dst] = old
			case OpPark:
				charge(CostPark)
			case OpWait, OpNotify:
				charge(CostWaitNotify)

			case OpInstanceOf:
				regs[in.Dst] = boolVal(e.isInstance(regs[in.A], in.Sym))
				charge(CostInstanceOf)
			case OpCheckCast:
				v := regs[in.A]
				if !v.IsNull() && !e.isInstance(v, in.Sym) {
					return rvm.Null(), fmt.Errorf("%w: to %s", rvm.ErrBadCast, in.Sym)
				}
				regs[in.Dst] = v
				charge(CostCheckCast)

			case OpGuardNull:
				e.Stats.GuardsExecuted[guardName("NullCheck", in.Sym)]++
				charge(CostGuard)
				if regs[in.A].AsRef() == nil && regs[in.A].Kind() != rvm.KindHandle {
					return rvm.Null(), fmt.Errorf("%w: null guard in %s", ErrDeopt, f.Name)
				}
			case OpGuardBounds:
				e.Stats.GuardsExecuted[guardName("BoundsCheck", in.Sym)]++
				charge(CostGuard)
				obj := regs[in.A].AsRef()
				if obj == nil {
					return rvm.Null(), fmt.Errorf("%w: bounds guard on null in %s", ErrDeopt, f.Name)
				}
				i := regs[in.B].AsInt()
				if i < 0 || i >= int64(len(obj.Elems)) {
					return rvm.Null(), fmt.Errorf("%w: bounds guard %d of %d in %s", ErrDeopt, i, len(obj.Elems), f.Name)
				}

			case OpVecArith:
				dst := regs[in.Dst].AsRef()
				a1 := regs[in.A].AsRef()
				if dst == nil || a1 == nil {
					return rvm.Null(), fmt.Errorf("%w: vecarith", rvm.ErrNullPointer)
				}
				base := regs[in.B].AsInt()
				if base < 0 || base+VectorWidth > int64(len(dst.Elems)) || base+VectorWidth > int64(len(a1.Elems)) {
					return rvm.Null(), fmt.Errorf("%w: vecarith lanes %d..%d", rvm.ErrBounds, base, base+VectorWidth)
				}
				var a2 *rvm.Object
				if in.ConstOperand == nil {
					a2 = regs[in.C].AsRef()
					if a2 == nil || base+VectorWidth > int64(len(a2.Elems)) {
						return rvm.Null(), fmt.Errorf("%w: vecarith operand", rvm.ErrBounds)
					}
				}
				for lane := int64(0); lane < VectorWidth; lane++ {
					var o rvm.Value
					if in.ConstOperand != nil {
						o = *in.ConstOperand
					} else {
						o = a2.Elems[base+lane]
					}
					v, err := evalArith(in.ArithOp, a1.Elems[base+lane], o)
					if err != nil {
						return rvm.Null(), err
					}
					dst.Elems[base+lane] = v
				}
				charge(CostVecArith)

			default:
				return rvm.Null(), fmt.Errorf("ir: unknown op %s in %s", in.Op, f.Name)
			}
		}

		// Terminator.
		e.fuel--
		if e.fuel < 0 {
			return rvm.Null(), rvm.ErrFuelExhausted
		}
		switch b.Term.Kind {
		case TermJump:
			charge(CostBranch)
			b = b.Term.To
		case TermBranch:
			charge(CostBranch)
			if regs[b.Term.Cond].Truthy() {
				b = b.Term.To
			} else {
				b = b.Term.Else
			}
		case TermReturn:
			charge(CostReturn)
			return regs[b.Term.Ret], nil
		case TermReturnVoid:
			charge(CostReturn)
			return rvm.Null(), nil
		}
	}
}

func (e *Exec) gatherArgs(regs []rvm.Value, args []Reg) []rvm.Value {
	out := make([]rvm.Value, len(args))
	for i, r := range args {
		out[i] = regs[r]
	}
	return out
}

func (e *Exec) isInstance(v rvm.Value, className string) bool {
	obj := v.AsRef()
	if obj == nil {
		return false
	}
	if target, ok := e.Prog.Classes[className]; ok {
		return obj.Class.IsSubclassOf(target)
	}
	return obj.Class.Implements(className)
}

// resolveHandle resolves "Class.method" against the class table (the IR
// keeps the bytecode method around for identity; handles are compared by
// method pointer).
func (e *Exec) resolveHandle(qualified string) (*rvm.Method, error) {
	dot := strings.LastIndexByte(qualified, '.')
	if dot < 0 {
		return nil, fmt.Errorf("%w: %q", rvm.ErrNoSuchMethod, qualified)
	}
	c, ok := e.Prog.Classes[qualified[:dot]]
	if !ok {
		return nil, fmt.Errorf("%w: %s", rvm.ErrNoSuchClass, qualified[:dot])
	}
	m, ok := c.Methods[qualified[dot+1:]]
	if !ok {
		return nil, fmt.Errorf("%w: %s", rvm.ErrNoSuchMethod, qualified)
	}
	return m, nil
}

// guardName forms the §5.5 guard-table key: speculative (hoisted) guards
// carry the "Speculative " prefix recorded in Sym by the guard-motion pass.
func guardName(base, sym string) string {
	if sym == "speculative" {
		return "Speculative " + base
	}
	return base
}

func evalArith(op Op, a, b rvm.Value) (rvm.Value, error) {
	if a.Kind() == rvm.KindFloat || b.Kind() == rvm.KindFloat {
		x, y := a.AsFloat(), b.AsFloat()
		switch op {
		case OpAdd:
			return rvm.Float(x + y), nil
		case OpSub:
			return rvm.Float(x - y), nil
		case OpMul:
			return rvm.Float(x * y), nil
		case OpDiv:
			if y == 0 {
				return rvm.Null(), rvm.ErrDivByZero
			}
			return rvm.Float(x / y), nil
		case OpRem:
			if y == 0 {
				return rvm.Null(), rvm.ErrDivByZero
			}
			return rvm.Float(float64(int64(x) % int64(y))), nil
		}
	}
	x, y := a.AsInt(), b.AsInt()
	switch op {
	case OpAdd:
		return rvm.Int(x + y), nil
	case OpSub:
		return rvm.Int(x - y), nil
	case OpMul:
		return rvm.Int(x * y), nil
	case OpDiv:
		if y == 0 {
			return rvm.Null(), rvm.ErrDivByZero
		}
		return rvm.Int(x / y), nil
	case OpRem:
		if y == 0 {
			return rvm.Null(), rvm.ErrDivByZero
		}
		return rvm.Int(x % y), nil
	}
	return rvm.Null(), fmt.Errorf("ir: bad arith op %s", op)
}

func evalCmp(op Op, a, b rvm.Value) rvm.Value {
	refLike := func(v rvm.Value) bool {
		k := v.Kind()
		return k == rvm.KindRef || k == rvm.KindNull || k == rvm.KindHandle
	}
	if refLike(a) || refLike(b) {
		eq := a.Equal(b)
		switch op {
		case OpCmpEQ:
			return boolVal(eq)
		case OpCmpNE:
			return boolVal(!eq)
		default:
			return boolVal(false)
		}
	}
	if a.Kind() == rvm.KindFloat || b.Kind() == rvm.KindFloat {
		x, y := a.AsFloat(), b.AsFloat()
		return boolVal(cmpFloat(op, x, y))
	}
	x, y := a.AsInt(), b.AsInt()
	return boolVal(cmpInt(op, x, y))
}

func cmpFloat(op Op, x, y float64) bool {
	switch op {
	case OpCmpLT:
		return x < y
	case OpCmpLE:
		return x <= y
	case OpCmpGT:
		return x > y
	case OpCmpGE:
		return x >= y
	case OpCmpEQ:
		return x == y
	default:
		return x != y
	}
}

func cmpInt(op Op, x, y int64) bool {
	switch op {
	case OpCmpLT:
		return x < y
	case OpCmpLE:
		return x <= y
	case OpCmpGT:
		return x > y
	case OpCmpGE:
		return x >= y
	case OpCmpEQ:
		return x == y
	default:
		return x != y
	}
}

func boolVal(b bool) rvm.Value {
	if b {
		return rvm.Int(1)
	}
	return rvm.Int(0)
}

// EvalArith evaluates an arithmetic op on constants (exported for the
// canonicalization pass's constant folding).
func EvalArith(op Op, a, b rvm.Value) (rvm.Value, error) { return evalArith(op, a, b) }

// EvalCmp evaluates a comparison op on constants.
func EvalCmp(op Op, a, b rvm.Value) rvm.Value { return evalCmp(op, a, b) }
