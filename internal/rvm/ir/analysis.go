package ir

// Analyses shared by the optimization passes: dominators, natural loops,
// definition counts, and liveness.

// Dominators computes the immediate-dominator-based dominance relation
// with the iterative data-flow algorithm. dom[b] is the set of blocks
// dominating b (including b itself).
func Dominators(f *Func) map[*Block]map[*Block]bool {
	f.RecomputePreds()
	all := map[*Block]bool{}
	for _, b := range f.Blocks {
		all[b] = true
	}
	dom := map[*Block]map[*Block]bool{}
	for _, b := range f.Blocks {
		if b == f.Entry {
			dom[b] = map[*Block]bool{b: true}
		} else {
			full := map[*Block]bool{}
			for k := range all {
				full[k] = true
			}
			dom[b] = full
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			if b == f.Entry {
				continue
			}
			var inter map[*Block]bool
			for _, p := range b.Preds {
				if inter == nil {
					inter = map[*Block]bool{}
					for k := range dom[p] {
						inter[k] = true
					}
				} else {
					for k := range inter {
						if !dom[p][k] {
							delete(inter, k)
						}
					}
				}
			}
			if inter == nil {
				inter = map[*Block]bool{}
			}
			inter[b] = true
			if len(inter) != len(dom[b]) {
				dom[b] = inter
				changed = true
				continue
			}
			for k := range inter {
				if !dom[b][k] {
					dom[b] = inter
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// Loop is a natural loop: a header and the set of blocks in its body
// (including the header).
type Loop struct {
	Header *Block
	Blocks map[*Block]bool
	// Latches are the in-loop predecessors of the header (back edges).
	Latches []*Block
}

// Contains reports whether the block is in the loop body.
func (l *Loop) Contains(b *Block) bool { return l.Blocks[b] }

// Preheader returns the loop's unique out-of-loop predecessor when it ends
// in an unconditional jump to the header, or nil. Passes that hoist code
// out of a loop (guard motion) or reason about the induction variable's
// initial value (bounds-check elimination) need this block: code placed in
// it runs exactly once per loop entry, and its final register state is the
// state the header observes on the first iteration.
func (l *Loop) Preheader(f *Func) *Block {
	f.RecomputePreds()
	var pre *Block
	for _, p := range l.Header.Preds {
		if l.Blocks[p] {
			continue
		}
		if pre != nil {
			return nil
		}
		pre = p
	}
	if pre == nil || pre.Term.Kind != TermJump || pre.Term.To != l.Header {
		return nil
	}
	return pre
}

// OnlyLoopSuccessor reports whether every in-loop successor of b is the
// loop header. A definition in such a block cannot reach any other in-loop
// block without control first re-entering the header — the property
// bounds-check elimination needs of the induction variable's increment.
func (l *Loop) OnlyLoopSuccessor(b *Block) bool {
	for _, s := range b.Term.Succs() {
		if l.Blocks[s] && s != l.Header {
			return false
		}
	}
	return true
}

// FindLoops detects natural loops from back edges (edges to a dominator).
// Loops sharing a header are merged.
func FindLoops(f *Func) []*Loop {
	dom := Dominators(f)
	byHeader := map[*Block]*Loop{}
	var order []*Block
	for _, b := range f.Blocks {
		for _, s := range b.Term.Succs() {
			if dom[b][s] { // back edge b -> s
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
					byHeader[s] = l
					order = append(order, s)
				}
				l.Latches = append(l.Latches, b)
				// Collect the loop body: reverse reachability from the
				// latch without passing through the header.
				stack := []*Block{b}
				for len(stack) > 0 {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if l.Blocks[n] {
						continue
					}
					l.Blocks[n] = true
					for _, p := range n.Preds {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	out := make([]*Loop, 0, len(order))
	for _, h := range order {
		out = append(out, byHeader[h])
	}
	return out
}

// DefCounts returns, for each register, how many instructions define it
// (function arguments count as one definition each).
func DefCounts(f *Func) []int {
	counts := make([]int, f.NRegs)
	for i := 0; i < f.NArgs && i < f.NRegs; i++ {
		counts[i]++
	}
	for _, b := range f.Blocks {
		for _, in := range b.Code {
			if in.Defines() {
				counts[in.Dst]++
			}
		}
	}
	return counts
}

// Liveness computes per-block live-out register sets with the standard
// backward data-flow iteration. Terminator uses (branch conditions,
// return values) are included.
func Liveness(f *Func) map[*Block]map[Reg]bool {
	f.RecomputePreds()
	gen := map[*Block]map[Reg]bool{}  // upward-exposed uses
	kill := map[*Block]map[Reg]bool{} // definitions
	for _, b := range f.Blocks {
		g := map[Reg]bool{}
		k := map[Reg]bool{}
		for _, in := range b.Code {
			for _, u := range in.Uses() {
				if !k[u] {
					g[u] = true
				}
			}
			if in.Defines() {
				k[in.Dst] = true
			}
		}
		switch b.Term.Kind {
		case TermBranch:
			if !k[b.Term.Cond] {
				g[b.Term.Cond] = true
			}
		case TermReturn:
			if !k[b.Term.Ret] {
				g[b.Term.Ret] = true
			}
		}
		gen[b], kill[b] = g, k
	}

	liveOut := map[*Block]map[Reg]bool{}
	liveIn := map[*Block]map[Reg]bool{}
	for _, b := range f.Blocks {
		liveOut[b] = map[Reg]bool{}
		liveIn[b] = map[Reg]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := map[Reg]bool{}
			for _, s := range b.Term.Succs() {
				for r := range liveIn[s] {
					out[r] = true
				}
			}
			in := map[Reg]bool{}
			for r := range gen[b] {
				in[r] = true
			}
			for r := range out {
				if !kill[b][r] {
					in[r] = true
				}
			}
			if len(out) != len(liveOut[b]) || len(in) != len(liveIn[b]) {
				liveOut[b], liveIn[b] = out, in
				changed = true
				continue
			}
			same := true
			for r := range out {
				if !liveOut[b][r] {
					same = false
					break
				}
			}
			if same {
				for r := range in {
					if !liveIn[b][r] {
						same = false
						break
					}
				}
			}
			if !same {
				liveOut[b], liveIn[b] = out, in
				changed = true
			}
		}
	}
	return liveOut
}
