// Package ir implements the RVM's compiler intermediate representation: a
// register-based control-flow graph with explicit guard instructions, the
// form the paper's seven optimizations (§5) transform. Bytecode methods are
// translated by Build (abstract stack interpretation); the IR interpreter
// in exec.go runs the result under a deterministic cycle cost model and is
// differentially tested against the bytecode interpreter.
package ir

import (
	"fmt"
	"strings"

	"renaissance/internal/rvm"
)

// Reg is a virtual register index.
type Reg int

// NoReg marks an absent register operand.
const NoReg Reg = -1

// Op enumerates IR instructions.
type Op int

// IR opcodes.
const (
	OpConst Op = iota // Dst = Val
	OpMove            // Dst = A

	OpAdd // Dst = A + B (float-promoting, like bytecode)
	OpSub
	OpMul
	OpDiv
	OpRem
	OpNeg // Dst = -A

	OpCmpLT // Dst = A < B
	OpCmpLE
	OpCmpGT
	OpCmpGE
	OpCmpEQ
	OpCmpNE

	OpNew      // Dst = new Sym
	OpGetField // Dst = A.Sym (unguarded; GuardNull precedes)
	OpPutField // A.Sym = B
	OpNewArray // Dst = new array[A]
	OpALoad    // Dst = A[B] (unguarded; GuardBounds precedes)
	OpAStore   // A[B] = C
	OpArrayLen // Dst = len(A)

	OpCallStatic // Dst = Sym(Args...)
	OpCallVirt   // Dst = Args[0].Sym(Args...) (dynamic dispatch)
	OpMakeHandle // Dst = handle(Sym) — invokedynamic bootstrap
	OpCallHandle // Dst = (A)(Args...) — polymorphic handle invocation

	OpMonitorEnter // lock A
	OpMonitorExit  // unlock A
	OpCAS          // Dst = CAS(A.Sym, expected=B, new=C)
	OpScalarCAS    // Dst = (regA == B ? (regA = C; 1) : 0) — EAWA residue
	OpAtomicAdd    // Dst = fetch-add(A.Sym, B)
	OpPark
	OpWait   // A
	OpNotify // A

	OpInstanceOf // Dst = A instanceof Sym
	OpCheckCast  // Dst = A checked to Sym

	// Guards. Executing a guard whose condition fails is a
	// deoptimization; the IR interpreter reports it as an error (our
	// experiments never deoptimize). GuardKind is in Sym.
	OpGuardNull   // deopt when A is null
	OpGuardBounds // deopt unless 0 <= B < len(A)

	// Vector instruction produced by loop vectorization: processes
	// VectorWidth consecutive lanes in one instruction.
	// Dst(array) [B..B+W) = A1(array)[B..] <ArithOp> A2(array or const)[B..]
	OpVecArith

	numOps
)

// VectorWidth is the lane count of OpVecArith.
const VectorWidth = 4

var opNames = [numOps]string{
	"const", "move",
	"add", "sub", "mul", "div", "rem", "neg",
	"cmplt", "cmple", "cmpgt", "cmpge", "cmpeq", "cmpne",
	"new", "getfield", "putfield", "newarray", "aload", "astore", "arraylen",
	"callstatic", "callvirt", "makehandle", "callhandle",
	"monitorenter", "monitorexit", "cas", "scalarcas", "atomicadd", "park", "wait", "notify",
	"instanceof", "checkcast",
	"guardnull", "guardbounds",
	"vecarith",
}

// String returns the mnemonic.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("irop(%d)", int(op))
}

// HasSideEffects reports whether the instruction must not be removed by
// dead-code elimination even when its result is unused.
func (op Op) HasSideEffects() bool {
	switch op {
	case OpPutField, OpAStore, OpCallStatic, OpCallVirt, OpCallHandle,
		OpMonitorEnter, OpMonitorExit, OpCAS, OpScalarCAS, OpAtomicAdd,
		OpPark, OpWait, OpNotify, OpGuardNull, OpGuardBounds, OpCheckCast,
		OpVecArith, OpNew, OpNewArray:
		// New/NewArray are kept: escape analysis, not DCE, removes
		// allocations (so that removal is always paired with scalar
		// replacement).
		return true
	}
	return false
}

// Instr is one IR instruction.
type Instr struct {
	Op   Op
	Dst  Reg
	A    Reg
	B    Reg
	C    Reg
	Args []Reg     // call arguments
	Val  rvm.Value // OpConst payload
	Sym  string    // class/field/method name
	// ArithOp refines OpVecArith (OpAdd/OpSub/OpMul).
	ArithOp Op
	// ConstOperand, when non-nil on OpVecArith, replaces the A2 array with
	// a broadcast scalar.
	ConstOperand *rvm.Value
}

// Uses returns the registers the instruction reads.
func (in *Instr) Uses() []Reg {
	var out []Reg
	add := func(r Reg) {
		if r != NoReg {
			out = append(out, r)
		}
	}
	switch in.Op {
	case OpConst, OpMakeHandle, OpNew, OpPark:
	case OpCallStatic:
	case OpVecArith:
		// The "destination" of a vector op is an array register that is
		// read (for identity), not defined.
		add(in.Dst)
		add(in.A)
		add(in.B)
		add(in.C)
	default:
		add(in.A)
		add(in.B)
		add(in.C)
	}
	out = append(out, in.Args...)
	return out
}

// Defines reports whether the instruction writes Dst as a regular result
// register (OpVecArith's Dst is an input).
func (in *Instr) Defines() bool {
	return in.Dst != NoReg && in.Op != OpVecArith
}

func (in *Instr) String() string {
	var b strings.Builder
	if in.Dst != NoReg {
		fmt.Fprintf(&b, "r%d = ", in.Dst)
	}
	b.WriteString(in.Op.String())
	if in.Sym != "" {
		fmt.Fprintf(&b, " %s", in.Sym)
	}
	if in.Op == OpConst {
		fmt.Fprintf(&b, " %s", in.Val)
	}
	if in.Op == OpVecArith {
		fmt.Fprintf(&b, "[%s]", in.ArithOp)
	}
	for _, r := range []Reg{in.A, in.B, in.C} {
		if r != NoReg {
			fmt.Fprintf(&b, " r%d", r)
		}
	}
	for _, r := range in.Args {
		fmt.Fprintf(&b, " a:r%d", r)
	}
	return b.String()
}

// TermKind discriminates block terminators.
type TermKind int

// Terminator kinds.
const (
	TermJump TermKind = iota
	TermBranch
	TermReturn
	TermReturnVoid
)

// Terminator ends a block.
type Terminator struct {
	Kind TermKind
	Cond Reg    // TermBranch
	To   *Block // TermJump target / TermBranch taken
	Else *Block // TermBranch fallthrough
	Ret  Reg    // TermReturn value
}

// Succs returns the successor blocks.
func (t *Terminator) Succs() []*Block {
	switch t.Kind {
	case TermJump:
		return []*Block{t.To}
	case TermBranch:
		return []*Block{t.To, t.Else}
	default:
		return nil
	}
}

// Block is a basic block.
type Block struct {
	ID    int
	Code  []*Instr
	Term  Terminator
	Preds []*Block
}

// Func is an IR function.
type Func struct {
	Name   string
	NArgs  int
	NRegs  int
	Blocks []*Block
	Entry  *Block
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := Reg(f.NRegs)
	f.NRegs++
	return r
}

// NewBlock appends a fresh block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// RecomputePreds rebuilds predecessor lists after CFG surgery.
func (f *Func) RecomputePreds() {
	for _, b := range f.Blocks {
		b.Preds = nil
	}
	for _, b := range f.Blocks {
		for _, s := range b.Term.Succs() {
			s.Preds = append(s.Preds, b)
		}
	}
}

// Renumber reassigns contiguous block IDs in current slice order and drops
// unreachable blocks.
func (f *Func) Renumber() {
	reachable := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if reachable[b] {
			return
		}
		reachable[b] = true
		for _, s := range b.Term.Succs() {
			walk(s)
		}
	}
	walk(f.Entry)
	var kept []*Block
	for _, b := range f.Blocks {
		if reachable[b] {
			b.ID = len(kept)
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	f.RecomputePreds()
}

// Size returns the total instruction count (terminators count as one), the
// compiled-code-size measure of Figure 7.
func (f *Func) Size() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Code) + 1
	}
	return n
}

func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (args=%d regs=%d)\n", f.Name, f.NArgs, f.NRegs)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d:", blk.ID)
		if blk == f.Entry {
			b.WriteString(" (entry)")
		}
		b.WriteString("\n")
		for _, in := range blk.Code {
			fmt.Fprintf(&b, "  %s\n", in)
		}
		switch blk.Term.Kind {
		case TermJump:
			fmt.Fprintf(&b, "  jump b%d\n", blk.Term.To.ID)
		case TermBranch:
			fmt.Fprintf(&b, "  branch r%d ? b%d : b%d\n", blk.Term.Cond, blk.Term.To.ID, blk.Term.Else.ID)
		case TermReturn:
			fmt.Fprintf(&b, "  return r%d\n", blk.Term.Ret)
		case TermReturnVoid:
			b.WriteString("  return\n")
		}
	}
	return b.String()
}

// Program is a compiled program: IR functions plus the class table (for
// field layout, allocation, and type tests).
type Program struct {
	Funcs   map[string]*Func // key: Class.method
	Classes map[string]*rvm.Class
	Entry   string
}

// Func looks up a function by qualified name.
func (p *Program) Func(name string) (*Func, bool) {
	f, ok := p.Funcs[name]
	return f, ok
}
