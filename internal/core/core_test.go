package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func testSpec(name string, w Workload) Spec {
	return Spec{
		Name: name, Suite: "test", Description: "d",
		Warmup: 2, Measured: 3,
		Setup: func(Config) (Workload, error) { return w, nil },
	}
}

func TestConfigScale(t *testing.T) {
	c := Config{SizeFactor: 0.5}
	if got := c.Scale(10); got != 5 {
		t.Errorf("Scale(10) = %d, want 5", got)
	}
	if got := c.Scale(1); got != 1 {
		t.Errorf("Scale(1) = %d, want 1 (minimum)", got)
	}
	c2 := Config{SizeFactor: 0.001}
	if got := c2.Scale(10); got != 1 {
		t.Errorf("tiny factor Scale(10) = %d, want 1", got)
	}
}

func TestConfigRandDeterministic(t *testing.T) {
	c := DefaultConfig()
	a := c.Rand("stream-a")
	b := c.Rand("stream-a")
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same stream label should give identical sequences")
		}
	}
	x := c.Rand("stream-x").Int63()
	y := c.Rand("stream-y").Int63()
	if x == y {
		t.Error("different stream labels should (almost surely) differ")
	}
}

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	r.Register(testSpec("alpha", WorkloadFunc(func() error { return nil })))
	r.Register(testSpec("beta", WorkloadFunc(func() error { return nil })))

	if _, ok := r.Lookup("test", "alpha"); !ok {
		t.Error("alpha not found")
	}
	if _, ok := r.Lookup("test", "missing"); ok {
		t.Error("missing found")
	}
	specs := r.BySuite("test")
	if len(specs) != 2 || specs[0].Name != "alpha" || specs[1].Name != "beta" {
		t.Errorf("BySuite = %v", specNames(specs))
	}
	if got := r.Suites(); len(got) != 1 || got[0] != "test" {
		t.Errorf("Suites = %v", got)
	}
	all := r.All()
	if len(all) != 2 {
		t.Errorf("All has %d specs", len(all))
	}
}

func specNames(specs []*Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, s Spec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		r.Register(s)
	}
	mustPanic("empty name", Spec{Suite: "s", Measured: 1, Setup: func(Config) (Workload, error) { return nil, nil }})
	mustPanic("empty suite", Spec{Name: "n", Measured: 1, Setup: func(Config) (Workload, error) { return nil, nil }})
	mustPanic("nil setup", Spec{Name: "n", Suite: "s", Measured: 1})
	mustPanic("bad iterations", Spec{Name: "n", Suite: "s", Measured: 0, Setup: func(Config) (Workload, error) { return nil, nil }})

	ok := testSpec("dup", WorkloadFunc(func() error { return nil }))
	r.Register(ok)
	mustPanic("duplicate", ok)
}

type countingWorkload struct {
	runs      int
	validated bool
	closed    bool
	failAt    int // fail on this run index (1-based), 0 = never
}

func (w *countingWorkload) RunIteration() error {
	w.runs++
	if w.failAt > 0 && w.runs == w.failAt {
		return errors.New("boom")
	}
	return nil
}
func (w *countingWorkload) Validate() error { w.validated = true; return nil }
func (w *countingWorkload) Close() error    { w.closed = true; return nil }

func TestRunnerPhases(t *testing.T) {
	w := &countingWorkload{}
	spec := testSpec("phases", w)
	r := NewRunner()
	res, err := r.Run(&spec)
	if err != nil {
		t.Fatal(err)
	}
	if w.runs != 5 {
		t.Errorf("total runs = %d, want 5 (2 warmup + 3 measured)", w.runs)
	}
	if len(res.Durations) != 3 {
		t.Errorf("measured durations = %d, want 3", len(res.Durations))
	}
	if !w.validated || !res.Validated {
		t.Error("workload was not validated")
	}
	if !w.closed {
		t.Error("workload was not closed")
	}
	if res.Profile == nil {
		t.Fatal("nil profile")
	}
	if res.Profile.Suite != "test" || res.Profile.Benchmark != "phases" {
		t.Errorf("profile identity %s/%s", res.Profile.Suite, res.Profile.Benchmark)
	}
	if res.MeanMillis() < 0 {
		t.Error("negative mean duration")
	}
}

func TestRunnerOverrides(t *testing.T) {
	w := &countingWorkload{}
	spec := testSpec("ovr", w)
	r := NewRunner()
	r.WarmupOverride = 1
	r.MeasuredOverride = 1
	if _, err := r.Run(&spec); err != nil {
		t.Fatal(err)
	}
	if w.runs != 2 {
		t.Errorf("runs = %d, want 2", w.runs)
	}
}

func TestRunnerErrorPaths(t *testing.T) {
	// Setup failure.
	bad := Spec{Name: "bad", Suite: "test", Warmup: 1, Measured: 1,
		Setup: func(Config) (Workload, error) { return nil, errors.New("no setup") }}
	r := NewRunner()
	res, err := r.Run(&bad)
	if err == nil || !strings.Contains(res.Err, "no setup") {
		t.Errorf("setup error not propagated: err=%v res.Err=%q", err, res.Err)
	}

	// Warmup failure.
	w1 := &countingWorkload{failAt: 1}
	s1 := testSpec("failwarm", w1)
	if _, err := r.Run(&s1); err == nil {
		t.Error("want warmup error")
	}
	if !w1.closed {
		t.Error("failed workload not closed")
	}

	// Steady-state failure.
	w2 := &countingWorkload{failAt: 4} // 2 warmup + 2nd measured
	s2 := testSpec("failsteady", w2)
	res2, err := r.Run(&s2)
	if err == nil {
		t.Error("want steady-state error")
	}
	if res2.Profile == nil {
		t.Error("profile should be captured even on failure")
	}
}

type recordingPlugin struct {
	Base
	before, after int
	iterations    []IterationEvent
}

func (p *recordingPlugin) BeforeBenchmark(*Spec)           { p.before++ }
func (p *recordingPlugin) AfterIteration(e IterationEvent) { p.iterations = append(p.iterations, e) }
func (p *recordingPlugin) AfterBenchmark(*Spec, *Result)   { p.after++ }

func TestPlugins(t *testing.T) {
	w := &countingWorkload{}
	spec := testSpec("plug", w)
	p := &recordingPlugin{}
	r := NewRunner()
	r.Use(p)
	if _, err := r.Run(&spec); err != nil {
		t.Fatal(err)
	}
	if p.before != 1 || p.after != 1 {
		t.Errorf("plugin calls: before=%d after=%d", p.before, p.after)
	}
	if len(p.iterations) != 5 {
		t.Fatalf("iteration events = %d, want 5", len(p.iterations))
	}
	warmups := 0
	for _, e := range p.iterations {
		if e.Warmup {
			warmups++
		}
	}
	if warmups != 2 {
		t.Errorf("warmup events = %d, want 2", warmups)
	}
}

func TestRunAll(t *testing.T) {
	r := NewRunner()
	good := testSpec("good", &countingWorkload{})
	bad := testSpec("bad", &countingWorkload{failAt: 1})
	results, err := r.RunAll([]*Spec{&good, &bad})
	if err == nil {
		t.Error("want error from bad spec")
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2 (all attempted)", len(results))
	}
}

func TestResultJSON(t *testing.T) {
	res := &Result{Benchmark: "b", Suite: "s", Durations: []float64{1, 2, 3}}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"benchmark": "b"`, `"steadyStateMillis"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON missing %q:\n%s", want, buf.String())
		}
	}
	if s := res.Summary(); s.N != 3 || s.Mean != 2 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestWorkloadFunc(t *testing.T) {
	called := false
	w := WorkloadFunc(func() error { called = true; return nil })
	if err := w.RunIteration(); err != nil || !called {
		t.Error("WorkloadFunc did not run")
	}
}

func TestGlobalRegister(t *testing.T) {
	name := fmt.Sprintf("global-%d", len(Global.All()))
	Register(Spec{
		Name: name, Suite: "test-global", Measured: 1,
		Setup: func(Config) (Workload, error) {
			return WorkloadFunc(func() error { return nil }), nil
		},
	})
	if _, ok := Global.Lookup("test-global", name); !ok {
		t.Error("global registration failed")
	}
}
