package core

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// This file provides ready-made measurement plugins (paper §2.2: "the
// harness also provides an interface for custom measurement plugins, which
// can latch onto benchmark execution events to perform additional
// operations").

// LatencyHistogram records per-iteration durations and reports
// percentiles per benchmark — the latency-profile plugin.
type LatencyHistogram struct {
	Base
	// IncludeWarmup also records warmup iterations when true.
	IncludeWarmup bool

	mu      sync.Mutex
	samples map[string][]time.Duration
}

// NewLatencyHistogram creates an empty histogram plugin.
func NewLatencyHistogram() *LatencyHistogram {
	return &LatencyHistogram{samples: make(map[string][]time.Duration)}
}

// AfterIteration implements Plugin.
func (p *LatencyHistogram) AfterIteration(ev IterationEvent) {
	if ev.Warmup && !p.IncludeWarmup {
		return
	}
	key := ev.Suite + "/" + ev.Benchmark
	p.mu.Lock()
	p.samples[key] = append(p.samples[key], ev.Duration)
	p.mu.Unlock()
}

// Percentile returns the q-th (0..1) latency percentile of a benchmark.
func (p *LatencyHistogram) Percentile(suite, benchmark string, q float64) (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.samples[suite+"/"+benchmark]
	if len(s) == 0 {
		return 0, false
	}
	sorted := append([]time.Duration(nil), s...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx], true
}

// Write dumps per-benchmark p50/p90/p99 latencies.
func (p *LatencyHistogram) Write(w io.Writer) error {
	p.mu.Lock()
	keys := make([]string, 0, len(p.samples))
	for k := range p.samples {
		keys = append(keys, k)
	}
	p.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		parts := splitKey(k)
		p50, _ := p.Percentile(parts[0], parts[1], 0.5)
		p90, _ := p.Percentile(parts[0], parts[1], 0.9)
		p99, _ := p.Percentile(parts[0], parts[1], 0.99)
		if _, err := fmt.Fprintf(w, "%-40s p50=%-12v p90=%-12v p99=%v\n", k, p50, p90, p99); err != nil {
			return err
		}
	}
	return nil
}

func splitKey(k string) [2]string {
	for i := 0; i < len(k); i++ {
		if k[i] == '/' {
			return [2]string{k[:i], k[i+1:]}
		}
	}
	return [2]string{k, ""}
}

// FailureLogger records iteration errors (the harness's dead-simple
// data-race/validation triage plugin).
type FailureLogger struct {
	Base

	mu       sync.Mutex
	failures []string
}

// AfterIteration implements Plugin.
func (p *FailureLogger) AfterIteration(ev IterationEvent) {
	if ev.Err == nil {
		return
	}
	p.mu.Lock()
	p.failures = append(p.failures,
		fmt.Sprintf("%s/%s iteration %d: %v", ev.Suite, ev.Benchmark, ev.Index, ev.Err))
	p.mu.Unlock()
}

// Failures returns the recorded failure descriptions.
func (p *FailureLogger) Failures() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.failures...)
}
