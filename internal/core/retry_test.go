package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// flaky fails its first n whole runs (every iteration of them), then runs
// clean: the shape Spec.Retries exists for.
type flaky struct {
	failRuns  atomic.Int32
	runStarts atomic.Int32
	inRun     atomic.Bool
}

func (f *flaky) workload() WorkloadFunc {
	return func() error {
		if !f.inRun.Swap(true) {
			// First iteration of a fresh attempt.
			f.runStarts.Add(1)
		}
		if f.runStarts.Load() <= f.failRuns.Load() {
			f.inRun.Store(false)
			return errors.New("transient failure")
		}
		return nil
	}
}

func retrySpec(name string, w Workload, retries int) Spec {
	return Spec{
		Name: name, Suite: "test", Description: "d",
		Warmup: 1, Measured: 2, Retries: retries,
		Setup: func(Config) (Workload, error) { return w, nil },
	}
}

func TestSpecRetriesRecoverTransientFailure(t *testing.T) {
	f := &flaky{}
	f.failRuns.Store(2)
	spec := retrySpec("flaky", f.workload(), 3)
	res, err := NewRunner().Run(&spec)
	if err != nil {
		t.Fatalf("run with retries failed: %v", err)
	}
	if res.Status != StatusOK {
		t.Errorf("status = %q, want ok", res.Status)
	}
	if res.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (two failures + one clean)", res.Attempts)
	}
}

func TestSpecRetriesExhaustedKeepsLastFailure(t *testing.T) {
	spec := retrySpec("doomed", WorkloadFunc(func() error {
		return errors.New("permanent failure")
	}), 2)
	res, err := NewRunner().Run(&spec)
	if err == nil {
		t.Fatal("run returned nil error after exhausting retries")
	}
	if res.Status != StatusError {
		t.Errorf("status = %q, want error", res.Status)
	}
	if res.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (1 + 2 retries)", res.Attempts)
	}
}

func TestRetriesOverrideReplacesSpec(t *testing.T) {
	// The spec says no retries; the runner override grants them.
	f := &flaky{}
	f.failRuns.Store(1)
	spec := retrySpec("overridden", f.workload(), 0)
	r := NewRunner()
	r.RetriesOverride = 2
	res, err := r.Run(&spec)
	if err != nil || res.Status != StatusOK {
		t.Fatalf("overridden run = (%q, %v), want ok", res.Status, err)
	}
	if res.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", res.Attempts)
	}
}

func TestNoRetriesByDefault(t *testing.T) {
	var runs atomic.Int32
	spec := retrySpec("once", WorkloadFunc(func() error {
		runs.Add(1)
		return errors.New("fails")
	}), 0)
	res, _ := NewRunner().Run(&spec)
	if res.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1 without retries", res.Attempts)
	}
	if runs.Load() != 1 {
		t.Errorf("workload ran %d iterations, want 1 (fail on first warmup)", runs.Load())
	}
}

func TestRetriesCoverPanics(t *testing.T) {
	// A panicking attempt is retried like an erroring one.
	var calls atomic.Int32
	spec := retrySpec("panic-retry", WorkloadFunc(func() error {
		if calls.Add(1) == 1 {
			panic("first attempt dies")
		}
		return nil
	}), 1)
	res, err := NewRunner().Run(&spec)
	if err != nil || res.Status != StatusOK {
		t.Fatalf("retried panic run = (%q, %v), want ok", res.Status, err)
	}
	if res.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", res.Attempts)
	}
}

func TestTallyCountsRetriedRuns(t *testing.T) {
	results := []*Result{
		{Status: StatusOK, Attempts: 1},
		{Status: StatusOK, Attempts: 3},
		{Status: StatusError, Attempts: 2},
	}
	tally := TallyResults(results)
	if tally.Retried != 2 {
		t.Errorf("Retried = %d, want 2", tally.Retried)
	}
	s := tally.String()
	if !strings.Contains(s, "(2 retried)") {
		t.Errorf("Tally.String() = %q, want retried suffix", s)
	}

	// Without retried runs the summary line stays in its legacy shape.
	clean := TallyResults([]*Result{{Status: StatusOK, Attempts: 1}})
	if s := clean.String(); strings.Contains(s, "retried") {
		t.Errorf("clean Tally.String() = %q, want no retried suffix", s)
	}
}
