package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestLatencyHistogram(t *testing.T) {
	p := NewLatencyHistogram()
	for i := 1; i <= 100; i++ {
		p.AfterIteration(IterationEvent{
			Suite: "s", Benchmark: "b", Index: i,
			Duration: time.Duration(i) * time.Millisecond,
		})
	}
	// Warmup excluded by default.
	p.AfterIteration(IterationEvent{Suite: "s", Benchmark: "b", Warmup: true,
		Duration: time.Hour})

	p50, ok := p.Percentile("s", "b", 0.5)
	if !ok || p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	p99, _ := p.Percentile("s", "b", 0.99)
	if p99 < 95*time.Millisecond {
		t.Errorf("p99 = %v", p99)
	}
	if _, ok := p.Percentile("s", "missing", 0.5); ok {
		t.Error("missing benchmark has percentile")
	}

	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "s/b") || !strings.Contains(buf.String(), "p99=") {
		t.Errorf("report = %q", buf.String())
	}
}

func TestLatencyHistogramIncludeWarmup(t *testing.T) {
	p := NewLatencyHistogram()
	p.IncludeWarmup = true
	p.AfterIteration(IterationEvent{Suite: "s", Benchmark: "b", Warmup: true, Duration: time.Second})
	if _, ok := p.Percentile("s", "b", 0.5); !ok {
		t.Error("warmup sample not recorded despite IncludeWarmup")
	}
}

func TestLatencyHistogramWithRunner(t *testing.T) {
	hist := NewLatencyHistogram()
	r := NewRunner()
	r.Use(hist)
	spec := testSpec("latency", WorkloadFunc(func() error {
		time.Sleep(time.Millisecond)
		return nil
	}))
	if _, err := r.Run(&spec); err != nil {
		t.Fatal(err)
	}
	p50, ok := hist.Percentile("test", "latency", 0.5)
	if !ok || p50 < time.Millisecond/2 {
		t.Errorf("p50 = %v, ok=%v", p50, ok)
	}
}

func TestFailureLogger(t *testing.T) {
	fl := &FailureLogger{}
	fl.AfterIteration(IterationEvent{Suite: "s", Benchmark: "b", Index: 3, Err: errors.New("boom")})
	fl.AfterIteration(IterationEvent{Suite: "s", Benchmark: "b", Index: 4}) // no error
	fails := fl.Failures()
	if len(fails) != 1 || !strings.Contains(fails[0], "boom") {
		t.Errorf("failures = %v", fails)
	}
}

func TestSplitKey(t *testing.T) {
	if got := splitKey("a/b"); got[0] != "a" || got[1] != "b" {
		t.Errorf("splitKey = %v", got)
	}
	if got := splitKey("noslash"); got[0] != "noslash" {
		t.Errorf("splitKey = %v", got)
	}
}
