package core

import (
	"time"

	"renaissance/internal/hdr"
)

// LatencyReporter is optionally implemented by workloads that record
// per-request latencies into an HDR histogram (the serving-tier workloads
// do). The runner resets the histogram after warmup so the summary covers
// only the steady-state phase, then folds the percentiles into the run's
// Result.
type LatencyReporter interface {
	LatencyHistogram() *hdr.Histogram
}

// LatencySummary is the percentile block of a run's per-request latency
// distribution, extracted from an hdr.Histogram. Percentiles are
// nearest-rank with the histogram's bounded relative error
// (hdr.MaxRelativeError).
type LatencySummary struct {
	Count      int64   `json:"count"`
	MinMillis  float64 `json:"minMillis"`
	P50Millis  float64 `json:"p50Millis"`
	P90Millis  float64 `json:"p90Millis"`
	P99Millis  float64 `json:"p99Millis"`
	P999Millis float64 `json:"p999Millis"`
	MaxMillis  float64 `json:"maxMillis"`
}

// SummarizeLatency extracts the summary from a histogram; nil when the
// histogram is nil or empty, so empty distributions vanish from JSON
// rather than reporting zeros.
func SummarizeLatency(h *hdr.Histogram) *LatencySummary {
	if h == nil || h.Count() == 0 {
		return nil
	}
	ms := func(v int64) float64 { return float64(v) / float64(time.Millisecond) }
	return &LatencySummary{
		Count:      h.Count(),
		MinMillis:  ms(h.Min()),
		P50Millis:  ms(h.Quantile(0.50)),
		P90Millis:  ms(h.Quantile(0.90)),
		P99Millis:  ms(h.Quantile(0.99)),
		P999Millis: ms(h.Quantile(0.999)),
		MaxMillis:  ms(h.Max()),
	}
}
