package core

import (
	"sync"
	"time"
)

// Fault describes one misbehavior the FaultInjector applies to matching
// iterations: an artificial delay, an injected error, an injected panic, or
// any combination (delay first, then panic, then error).
type Fault struct {
	// Suite / Benchmark restrict the fault to one benchmark; empty
	// matches any.
	Suite     string
	Benchmark string
	// Iteration is the phase-local iteration index to hit; -1 hits every
	// iteration of the selected phase.
	Iteration int
	// Warmup selects the warmup phase instead of the steady state.
	Warmup bool
	// Delay is slept before the iteration body runs, counting toward the
	// iteration duration and the benchmark deadline.
	Delay time.Duration
	// Err, when non-nil, is returned as the iteration's error.
	Err error
	// Panic, when non-nil, is the value panicked with.
	Panic any
}

func (f *Fault) matches(ev IterationEvent) bool {
	if f.Suite != "" && f.Suite != ev.Suite {
		return false
	}
	if f.Benchmark != "" && f.Benchmark != ev.Benchmark {
		return false
	}
	if f.Warmup != ev.Warmup {
		return false
	}
	return f.Iteration < 0 || f.Iteration == ev.Index
}

// FaultInjector is a measurement plugin that injects configurable delays,
// errors, and panics into benchmark iterations, so the harness's panic
// isolation, deadline enforcement, and graceful degradation are testable
// deterministically (and demonstrable from the CLI via -fault).
type FaultInjector struct {
	Base

	mu       sync.Mutex
	faults   []Fault
	injected int
}

// NewFaultInjector returns an injector armed with the given faults.
func NewFaultInjector(faults ...Fault) *FaultInjector {
	return &FaultInjector{faults: faults}
}

// Add arms one more fault.
func (fi *FaultInjector) Add(f Fault) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.faults = append(fi.faults, f)
}

// Injected returns how many faults have fired so far.
func (fi *FaultInjector) Injected() int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.injected
}

// BeforeIteration implements Interceptor: it applies the first matching
// fault (delay, then panic, then error).
func (fi *FaultInjector) BeforeIteration(ev IterationEvent) error {
	fi.mu.Lock()
	var hit *Fault
	for i := range fi.faults {
		if fi.faults[i].matches(ev) {
			hit = &fi.faults[i]
			fi.injected++
			break
		}
	}
	fi.mu.Unlock()
	if hit == nil {
		return nil
	}
	if hit.Delay > 0 {
		time.Sleep(hit.Delay)
	}
	if hit.Panic != nil {
		panic(hit.Panic)
	}
	return hit.Err
}
