package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"renaissance/internal/metrics"
	"renaissance/internal/stats"
)

// Result holds the outcome of one benchmark run: the per-iteration
// steady-state durations and the metric profile of the steady-state phase.
type Result struct {
	Benchmark string        `json:"benchmark"`
	Suite     string        `json:"suite"`
	Warmup    int           `json:"warmupIterations"`
	Durations []float64     `json:"steadyStateMillis"` // per measured iteration
	Total     time.Duration `json:"-"`
	Profile   *metrics.Profile
	Validated bool   `json:"validated"`
	Err       string `json:"error,omitempty"`
}

// MeanMillis returns the mean steady-state iteration time in milliseconds.
func (r *Result) MeanMillis() float64 { return stats.Mean(r.Durations) }

// Summary returns descriptive statistics of the steady-state durations.
func (r *Result) Summary() stats.Summary { return stats.Summarize(r.Durations) }

// WriteJSON writes the result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Runner executes benchmarks with a shared configuration and plugin list.
type Runner struct {
	Config  Config
	Plugins []Plugin
	// WarmupOverride / MeasuredOverride replace the spec's iteration counts
	// when > 0 (useful for quick runs and tests).
	WarmupOverride   int
	MeasuredOverride int
}

// NewRunner returns a Runner with the default configuration.
func NewRunner() *Runner { return &Runner{Config: DefaultConfig()} }

// Use appends plugins to the runner.
func (r *Runner) Use(ps ...Plugin) { r.Plugins = append(r.Plugins, ps...) }

// Run sets up the spec's workload, executes the warmup phase, profiles the
// steady-state phase, validates the workload if it supports validation, and
// returns the result. Iteration errors abort the run and are reported in
// the result as well as the returned error.
func (r *Runner) Run(spec *Spec) (*Result, error) {
	res := &Result{Benchmark: spec.Name, Suite: spec.Suite}

	warmup := spec.Warmup
	if r.WarmupOverride > 0 {
		warmup = r.WarmupOverride
	}
	measured := spec.Measured
	if r.MeasuredOverride > 0 {
		measured = r.MeasuredOverride
	}
	res.Warmup = warmup

	w, err := spec.Setup(r.Config)
	if err != nil {
		res.Err = err.Error()
		return res, fmt.Errorf("core: setup of %s/%s: %w", spec.Suite, spec.Name, err)
	}
	defer func() {
		if c, ok := w.(Closer); ok {
			_ = c.Close()
		}
	}()

	for _, p := range r.Plugins {
		p.BeforeBenchmark(spec)
	}

	runOne := func(i int, isWarmup bool) error {
		start := time.Now()
		err := w.RunIteration()
		d := time.Since(start)
		ev := IterationEvent{
			Benchmark: spec.Name, Suite: spec.Suite,
			Index: i, Warmup: isWarmup, Duration: d, Err: err,
		}
		for _, p := range r.Plugins {
			p.AfterIteration(ev)
		}
		if err != nil {
			return err
		}
		if !isWarmup {
			res.Durations = append(res.Durations, float64(d)/float64(time.Millisecond))
			res.Total += d
		}
		return nil
	}

	for i := 0; i < warmup; i++ {
		if err := runOne(i, true); err != nil {
			res.Err = err.Error()
			return res, fmt.Errorf("core: warmup of %s/%s: %w", spec.Suite, spec.Name, err)
		}
	}

	prof := metrics.StartProfile(spec.Suite, spec.Name)
	for i := 0; i < measured; i++ {
		if err := runOne(i, false); err != nil {
			res.Err = err.Error()
			res.Profile = prof.Stop()
			return res, fmt.Errorf("core: iteration of %s/%s: %w", spec.Suite, spec.Name, err)
		}
	}
	res.Profile = prof.Stop()

	if v, ok := w.(Validator); ok {
		if err := v.Validate(); err != nil {
			res.Err = err.Error()
			return res, fmt.Errorf("core: validation of %s/%s: %w", spec.Suite, spec.Name, err)
		}
		res.Validated = true
	}

	for _, p := range r.Plugins {
		p.AfterBenchmark(spec, res)
	}
	return res, nil
}

// RunAll runs every given spec and returns the results; the first error is
// returned after attempting all specs.
func (r *Runner) RunAll(specs []*Spec) ([]*Result, error) {
	var firstErr error
	out := make([]*Result, 0, len(specs))
	for _, s := range specs {
		res, err := r.Run(s)
		out = append(out, res)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}
