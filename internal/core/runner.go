package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"renaissance/internal/metrics"
	"renaissance/internal/stats"
)

// Status classifies the outcome of one benchmark run. A non-ok status never
// aborts a sweep: RunAll records it and moves on to the next spec (the
// steady-state-methodology requirement that a single misbehaving benchmark
// must not invalidate a whole suite run).
type Status string

const (
	// StatusOK marks a run that completed every phase without error.
	StatusOK Status = "ok"
	// StatusError marks a run aborted by a setup, iteration, or
	// validation error.
	StatusError Status = "error"
	// StatusTimeout marks a run abandoned because it exceeded its
	// deadline (Spec.Timeout or Runner.TimeoutOverride).
	StatusTimeout Status = "timeout"
	// StatusPanic marks a run whose workload panicked; the panic value
	// and stack are preserved in Result.Err.
	StatusPanic Status = "panic"
)

// PanicError wraps a recovered panic from a workload iteration (or setup /
// validation / teardown) so it can flow through the ordinary error paths
// with the goroutine stack attached.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// statusForError distinguishes panics from ordinary errors.
func statusForError(err error) Status {
	var pe *PanicError
	if errors.As(err, &pe) {
		return StatusPanic
	}
	return StatusError
}

// guard runs fn, converting a panic into a *PanicError so a misbehaving
// workload cannot take down the harness process.
func guard(fn func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Result holds the outcome of one benchmark run: the per-iteration
// steady-state durations, the metric profile of the steady-state phase, and
// the run's terminal status.
type Result struct {
	Benchmark string           `json:"benchmark"`
	Suite     string           `json:"suite"`
	Warmup    int              `json:"warmupIterations"`
	Durations []float64        `json:"steadyStateMillis"` // per measured iteration
	Total     time.Duration    `json:"-"`
	Profile   *metrics.Profile `json:"profile,omitempty"`
	// Latency summarizes the workload's per-request latency distribution
	// over the steady-state phase, for workloads implementing
	// LatencyReporter; nil otherwise.
	Latency   *LatencySummary `json:"latency,omitempty"`
	Validated bool            `json:"validated"`
	Status    Status          `json:"status"`
	Err       string          `json:"error,omitempty"`
	// Attempts is how many times the run executed (1 plus retries used);
	// omitted from JSON for single-attempt runs.
	Attempts int `json:"attempts,omitempty"`
	// Recomputes counts RDD partition recomputes over the measured phase
	// (the lineage recovery engine re-running a failed partition); zero —
	// and omitted — in fault-free runs.
	Recomputes int64 `json:"rddRecomputes,omitempty"`
	// Speculations counts speculative straggler duplicates launched over
	// the measured phase; zero unless -rdd.speculate is on.
	Speculations int64 `json:"rddSpeculations,omitempty"`
}

// MeanMillis returns the mean steady-state iteration time in milliseconds.
func (r *Result) MeanMillis() float64 { return stats.Mean(r.Durations) }

// Summary returns descriptive statistics of the steady-state durations.
func (r *Result) Summary() stats.Summary { return stats.Summarize(r.Durations) }

// WriteJSON writes the result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Runner executes benchmarks with a shared configuration and plugin list.
type Runner struct {
	Config  Config
	Plugins []Plugin
	// WarmupOverride / MeasuredOverride replace the spec's iteration counts
	// when > 0 (useful for quick runs and tests).
	WarmupOverride   int
	MeasuredOverride int
	// TimeoutOverride replaces every spec's Timeout when > 0. A run that
	// exceeds its deadline is abandoned on its goroutine and reported with
	// StatusTimeout instead of hanging the sweep.
	TimeoutOverride time.Duration
	// RetriesOverride replaces every spec's Retries when > 0 (matching the
	// other overrides). A failed run — error, timeout, or panic — is
	// re-run from scratch up to that many extra times; the first clean
	// result wins, otherwise the last failure stands. Every result records
	// its attempt count.
	RetriesOverride int
}

// NewRunner returns a Runner with the default configuration.
func NewRunner() *Runner { return &Runner{Config: DefaultConfig()} }

// Use appends plugins to the runner.
func (r *Runner) Use(ps ...Plugin) { r.Plugins = append(r.Plugins, ps...) }

// Run sets up the spec's workload, executes the warmup phase, profiles the
// steady-state phase, validates the workload if it supports validation, and
// returns the result. The whole run executes on a monitored goroutine:
// panics are recovered into the result (StatusPanic) and a run exceeding
// its deadline is abandoned and reported (StatusTimeout) rather than
// hanging the suite. Failures abort the run and are reported both in the
// result and the returned error; in every case the returned Result is
// non-nil with its Status populated.
//
// A failing run is re-executed from scratch up to the spec's Retries (or
// the runner's RetriesOverride): the first clean attempt's result is
// returned, otherwise the last failure's. Result.Attempts records how many
// attempts the returned result took.
func (r *Runner) Run(spec *Spec) (*Result, error) {
	retries := spec.Retries
	if r.RetriesOverride > 0 {
		retries = r.RetriesOverride
	}
	for attempt := 1; ; attempt++ {
		res, err := r.runOnce(spec)
		res.Attempts = attempt
		if res.Status == StatusOK || attempt > retries {
			return res, err
		}
	}
}

// runOnce executes a single monitored attempt of the spec.
func (r *Runner) runOnce(spec *Spec) (*Result, error) {
	timeout := spec.Timeout
	if r.TimeoutOverride > 0 {
		timeout = r.TimeoutOverride
	}

	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1) // buffered: an abandoned run must not leak
	go func() {
		res, err := r.runSpec(spec)
		ch <- outcome{res, err}
	}()

	if timeout <= 0 {
		o := <-ch
		return o.res, o.err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timer.C:
		// The wedged run keeps its own Result; build a fresh one so the
		// abandoned goroutine cannot race with the caller's reads.
		err := fmt.Errorf("core: %s/%s exceeded deadline %v; run abandoned",
			spec.Suite, spec.Name, timeout)
		res := &Result{
			Benchmark: spec.Name, Suite: spec.Suite,
			Status: StatusTimeout, Err: err.Error(),
		}
		return res, err
	}
}

// runSpec is the body of Run, executed on the monitored goroutine.
func (r *Runner) runSpec(spec *Spec) (*Result, error) {
	res := &Result{Benchmark: spec.Name, Suite: spec.Suite, Status: StatusOK}

	fail := func(phase string, err error) (*Result, error) {
		res.Err = err.Error()
		res.Status = statusForError(err)
		return res, fmt.Errorf("core: %s of %s/%s: %w", phase, spec.Suite, spec.Name, err)
	}

	warmup := spec.Warmup
	if r.WarmupOverride > 0 {
		warmup = r.WarmupOverride
	}
	measured := spec.Measured
	if r.MeasuredOverride > 0 {
		measured = r.MeasuredOverride
	}
	res.Warmup = warmup

	var w Workload
	err := guard(func() error {
		var err error
		w, err = spec.Setup(r.Config)
		return err
	})
	if err != nil {
		return fail("setup", err)
	}
	defer func() {
		if c, ok := w.(Closer); ok {
			_ = guard(c.Close)
		}
	}()

	for _, p := range r.Plugins {
		p.BeforeBenchmark(spec)
	}

	runOne := func(i int, isWarmup bool) error {
		start := time.Now()
		err := guard(func() error {
			for _, p := range r.Plugins {
				if ic, ok := p.(Interceptor); ok {
					ev := IterationEvent{
						Benchmark: spec.Name, Suite: spec.Suite,
						Index: i, Warmup: isWarmup,
					}
					if err := ic.BeforeIteration(ev); err != nil {
						return err
					}
				}
			}
			return w.RunIteration()
		})
		d := time.Since(start)
		ev := IterationEvent{
			Benchmark: spec.Name, Suite: spec.Suite,
			Index: i, Warmup: isWarmup, Duration: d, Err: err,
		}
		for _, p := range r.Plugins {
			p.AfterIteration(ev)
		}
		if err != nil {
			return err
		}
		if !isWarmup {
			res.Durations = append(res.Durations, float64(d)/float64(time.Millisecond))
			res.Total += d
		}
		return nil
	}

	for i := 0; i < warmup; i++ {
		if err := runOne(i, true); err != nil {
			return fail("warmup", err)
		}
	}

	// Steady-state latency only: warmup samples are discarded, matching the
	// handling of iteration durations.
	lr, hasLatency := w.(LatencyReporter)
	if hasLatency {
		if h := lr.LatencyHistogram(); h != nil {
			h.Reset()
		}
	}

	recordRecovery := func() {
		if res.Profile == nil {
			return
		}
		res.Recomputes = res.Profile.Counts.Get(metrics.RddRecompute)
		res.Speculations = res.Profile.Counts.Get(metrics.RddSpec)
	}
	prof := metrics.StartProfile(spec.Suite, spec.Name)
	for i := 0; i < measured; i++ {
		if err := runOne(i, false); err != nil {
			res.Profile = prof.Stop()
			recordRecovery()
			return fail("iteration", err)
		}
	}
	res.Profile = prof.Stop()
	recordRecovery()
	if hasLatency {
		res.Latency = SummarizeLatency(lr.LatencyHistogram())
	}

	if v, ok := w.(Validator); ok {
		if err := guard(v.Validate); err != nil {
			return fail("validation", err)
		}
		res.Validated = true
	}

	for _, p := range r.Plugins {
		p.AfterBenchmark(spec, res)
	}
	return res, nil
}

// RunAll runs every given spec with graceful degradation: a failed,
// panicked, or timed-out benchmark is recorded with its status and the
// sweep continues with the remaining specs. The first error is returned
// after attempting all specs.
func (r *Runner) RunAll(specs []*Spec) ([]*Result, error) {
	var firstErr error
	out := make([]*Result, 0, len(specs))
	for _, s := range specs {
		res, err := r.Run(s)
		out = append(out, res)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}

// Tally counts results by status, for sweep exit summaries.
type Tally struct {
	OK, Errors, Timeouts, Panics int
	// Retried counts results that needed more than one attempt, whatever
	// their final status.
	Retried int
	// Recomputes and Speculations total the RDD recovery engine's
	// partition recomputes and speculative duplicates across the result
	// set — nonzero only under fault injection or -rdd.speculate.
	Recomputes   int64
	Speculations int64
}

// TallyResults tallies the statuses of a result set.
func TallyResults(results []*Result) Tally {
	var t Tally
	for _, res := range results {
		switch res.Status {
		case StatusError:
			t.Errors++
		case StatusTimeout:
			t.Timeouts++
		case StatusPanic:
			t.Panics++
		default:
			t.OK++
		}
		if res.Attempts > 1 {
			t.Retried++
		}
		t.Recomputes += res.Recomputes
		t.Speculations += res.Speculations
	}
	return t
}

// Total returns the number of tallied results.
func (t Tally) Total() int { return t.OK + t.Errors + t.Timeouts + t.Panics }

// AllOK reports whether every tallied run completed cleanly.
func (t Tally) AllOK() bool { return t.Total() == t.OK }

// String renders the tally as an exit summary line. The retried suffix
// appears only when some result needed retries, keeping the common line
// stable for tooling.
func (t Tally) String() string {
	s := fmt.Sprintf("%d ok, %d error, %d timeout, %d panic",
		t.OK, t.Errors, t.Timeouts, t.Panics)
	if t.Retried > 0 {
		s += fmt.Sprintf(" (%d retried)", t.Retried)
	}
	if t.Recomputes > 0 {
		s += fmt.Sprintf(" (%d recomputed)", t.Recomputes)
	}
	if t.Speculations > 0 {
		s += fmt.Sprintf(" (%d speculated)", t.Speculations)
	}
	return s
}
