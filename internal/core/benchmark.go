// Package core implements the Renaissance benchmark harness (paper §2.2):
// benchmark registration, warmup and steady-state execution, measurement
// plugins that latch onto benchmark execution events, and result
// collection. It is the Go counterpart of the paper's harness that "allows
// to run the benchmarks and collect the results, and also allows to easily
// add new benchmarks".
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Suite names used throughout the repository. Renaissance is the paper's
// contribution; the other three are the from-scratch baseline suites that
// play the roles of DaCapo, ScalaBench, and SPECjvm2008 in the comparisons.
const (
	SuiteRenaissance = "renaissance"
	SuiteOO          = "oo"      // DaCapo-like object-oriented workloads
	SuiteFn          = "fn"      // ScalaBench-like functional workloads
	SuiteClassic     = "classic" // SPECjvm2008-like numeric kernels
)

// Config carries per-run tunables into a benchmark's Setup. SizeFactor
// scales the default workload size (1.0 = paper-like default, smaller for
// quick runs); Seed seeds every pseudo-random choice so that executions are
// deterministic (the paper's "Deterministic Execution" requirement).
type Config struct {
	SizeFactor float64
	Seed       int64
	Threads    int // degree of parallelism hint; 0 means GOMAXPROCS
}

// DefaultConfig returns the configuration used when none is supplied.
func DefaultConfig() Config {
	return Config{SizeFactor: 1.0, Seed: 42, Threads: 0}
}

// Scale scales n by the config's size factor, with a minimum of 1.
func (c Config) Scale(n int) int {
	v := int(float64(n) * c.SizeFactor)
	if v < 1 {
		v = 1
	}
	return v
}

// Rand returns a deterministic random source derived from the seed and a
// stream label, so independent parts of a workload draw independent but
// reproducible streams.
func (c Config) Rand(stream string) *rand.Rand {
	h := int64(14695981039346656037 & 0x7fffffffffffffff)
	for _, b := range []byte(stream) {
		h ^= int64(b)
		h *= 1099511628211
		h &= 0x7fffffffffffffff
	}
	return rand.New(rand.NewSource(c.Seed ^ h))
}

// A Workload is one set-up benchmark instance. RunIteration executes a
// single benchmark operation (the unit whose execution time is reported,
// like one "benchmark iteration" in the paper).
type Workload interface {
	RunIteration() error
}

// WorkloadFunc adapts a function to the Workload interface.
type WorkloadFunc func() error

// RunIteration calls the function.
func (f WorkloadFunc) RunIteration() error { return f() }

// Validator is optionally implemented by workloads that can check the
// correctness of their accumulated results after the run (the paper's
// benchmark-correctness goal: no silent data races or wrong results).
type Validator interface {
	Validate() error
}

// Closer is optionally implemented by workloads that hold resources
// (servers, pools) needing teardown.
type Closer interface {
	Close() error
}

// Spec describes a benchmark: its identity (Table 1 row), its default
// execution shape, and its factory.
type Spec struct {
	Name        string
	Suite       string
	Description string
	// Focus mirrors Table 1's "Focus" column, e.g. "actors, message-passing".
	Focus []string
	// Warmup and Measured are the default iteration counts for the warmup
	// and steady-state phases (§4.1: "all benchmarks have a warm-up phase;
	// execution after the warmup is classified as steady-state").
	Warmup   int
	Measured int
	// Timeout is the deadline for one full run of this benchmark (setup +
	// warmup + steady state + validation). Zero means no deadline; the
	// runner's TimeoutOverride takes precedence when set. A run exceeding
	// its deadline is abandoned and reported with StatusTimeout.
	Timeout time.Duration
	// Retries is how many times a run ending in error, timeout, or panic
	// is re-run from scratch before its last result stands. 0 means no
	// retries; the runner's RetriesOverride takes precedence when >= 0.
	Retries int
	// Setup builds the workload for the given configuration.
	Setup func(cfg Config) (Workload, error)
}

func (s *Spec) validate() error {
	switch {
	case s.Name == "":
		return errors.New("core: spec has empty name")
	case s.Suite == "":
		return fmt.Errorf("core: spec %q has empty suite", s.Name)
	case s.Setup == nil:
		return fmt.Errorf("core: spec %q has nil Setup", s.Name)
	case s.Warmup < 0 || s.Measured <= 0:
		return fmt.Errorf("core: spec %q has invalid iteration counts", s.Name)
	}
	return nil
}

// Registry holds a set of benchmark specs keyed by suite and name.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]*Spec // key: suite + "/" + name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]*Spec)}
}

// Global is the process-wide registry the suite packages register into.
var Global = NewRegistry()

// Register adds a spec to the registry. It panics on invalid specs or
// duplicate registration, both of which are programming errors in a suite
// package's init.
func (r *Registry) Register(s Spec) {
	if err := s.validate(); err != nil {
		panic(err)
	}
	key := s.Suite + "/" + s.Name
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.specs[key]; dup {
		panic(fmt.Sprintf("core: duplicate benchmark %s", key))
	}
	sc := s
	r.specs[key] = &sc
}

// Register adds a spec to the global registry.
func Register(s Spec) { Global.Register(s) }

// Lookup finds a spec by suite and name.
func (r *Registry) Lookup(suite, name string) (*Spec, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.specs[suite+"/"+name]
	return s, ok
}

// BySuite returns the specs of one suite, sorted by name.
func (r *Registry) BySuite(suite string) []*Spec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Spec
	for _, s := range r.specs {
		if s.Suite == suite {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// All returns every spec, sorted by suite then name.
func (r *Registry) All() []*Spec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Spec, 0, len(r.specs))
	for _, s := range r.specs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Suites returns the distinct suite names present, sorted.
func (r *Registry) Suites() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := map[string]bool{}
	for _, s := range r.specs {
		seen[s.Suite] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// IterationEvent describes one executed iteration, passed to plugins.
type IterationEvent struct {
	Benchmark string
	Suite     string
	Index     int  // iteration index within its phase
	Warmup    bool // true during the warmup phase
	Duration  time.Duration
	Err       error
}

// Plugin latches onto benchmark execution events (paper §2.2: "the harness
// also provides an interface for custom measurement plugins, which can
// latch onto benchmark execution events"). All methods are optional via
// the Base embedding.
type Plugin interface {
	BeforeBenchmark(spec *Spec)
	AfterIteration(ev IterationEvent)
	AfterBenchmark(spec *Spec, res *Result)
}

// Interceptor is optionally implemented by plugins that act before an
// iteration runs. The event carries the iteration's identity (Duration and
// Err are zero). A returned error is treated as the iteration's error; a
// panic is recovered by the runner like a workload panic. This is the hook
// the FaultInjector uses to make failure handling deterministically
// testable.
type Interceptor interface {
	BeforeIteration(ev IterationEvent) error
}

// Base is a no-op Plugin for embedding.
type Base struct{}

// BeforeBenchmark implements Plugin.
func (Base) BeforeBenchmark(*Spec) {}

// AfterIteration implements Plugin.
func (Base) AfterIteration(IterationEvent) {}

// AfterBenchmark implements Plugin.
func (Base) AfterBenchmark(*Spec, *Result) {}
