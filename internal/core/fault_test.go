package core

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// --- panic isolation ---

func TestRunPanicRecovery(t *testing.T) {
	w := WorkloadFunc(func() error { panic("kaboom") })
	spec := testSpec("panicky", w)
	r := NewRunner()
	res, err := r.Run(&spec)
	if err == nil {
		t.Fatal("want error from panicking workload")
	}
	if res.Status != StatusPanic {
		t.Errorf("status = %q, want %q", res.Status, StatusPanic)
	}
	if !strings.Contains(res.Err, "kaboom") {
		t.Errorf("res.Err missing panic value: %q", res.Err)
	}
	if !strings.Contains(res.Err, "goroutine") {
		t.Errorf("res.Err missing stack trace: %q", res.Err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaboom" {
		t.Errorf("returned error does not wrap PanicError: %v", err)
	}
}

type panickySetup struct{}

func (panickySetup) RunIteration() error { return nil }

func TestRunPanicInSetupAndValidate(t *testing.T) {
	r := NewRunner()

	setup := Spec{Name: "setup-panic", Suite: "test", Warmup: 1, Measured: 1,
		Setup: func(Config) (Workload, error) { panic("setup blew up") }}
	res, err := r.Run(&setup)
	if err == nil || res.Status != StatusPanic {
		t.Errorf("setup panic: status=%q err=%v", res.Status, err)
	}

	val := testSpec("validate-panic", &panicValidator{})
	res, err = r.Run(&val)
	if err == nil || res.Status != StatusPanic {
		t.Errorf("validation panic: status=%q err=%v", res.Status, err)
	}
	if res.Validated {
		t.Error("panicked validation marked validated")
	}
}

type panicValidator struct{}

func (*panicValidator) RunIteration() error { return nil }
func (*panicValidator) Validate() error     { panic("bad state") }

// A panicking Close must not mask a successful run.
type panicCloser struct{ ran int }

func (w *panicCloser) RunIteration() error { w.ran++; return nil }
func (w *panicCloser) Close() error        { panic("close failed") }

func TestRunPanicInCloseIsContained(t *testing.T) {
	w := &panicCloser{}
	spec := testSpec("close-panic", w)
	res, err := r0().Run(&spec)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if res.Status != StatusOK {
		t.Errorf("status = %q, want ok", res.Status)
	}
	if w.ran != 5 {
		t.Errorf("ran = %d, want 5", w.ran)
	}
}

func r0() *Runner { return NewRunner() }

// --- deadlines ---

func TestRunTimeoutOverride(t *testing.T) {
	w := WorkloadFunc(func() error { time.Sleep(10 * time.Second); return nil })
	spec := testSpec("sleepy", w)
	r := NewRunner()
	r.TimeoutOverride = 50 * time.Millisecond
	start := time.Now()
	res, err := r.Run(&spec)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Run took %v; deadline not enforced", elapsed)
	}
	if err == nil {
		t.Fatal("want timeout error")
	}
	if res.Status != StatusTimeout {
		t.Errorf("status = %q, want %q", res.Status, StatusTimeout)
	}
	if res.Benchmark != "sleepy" || res.Suite != "test" {
		t.Errorf("timeout result identity %s/%s", res.Suite, res.Benchmark)
	}
	if !strings.Contains(res.Err, "deadline") {
		t.Errorf("res.Err = %q", res.Err)
	}
}

func TestRunSpecTimeoutDefault(t *testing.T) {
	w := WorkloadFunc(func() error { time.Sleep(10 * time.Second); return nil })
	spec := testSpec("sleepy-spec", w)
	spec.Timeout = 50 * time.Millisecond
	res, err := NewRunner().Run(&spec)
	if err == nil || res.Status != StatusTimeout {
		t.Errorf("spec timeout not enforced: status=%q err=%v", res.Status, err)
	}
}

func TestRunNoTimeoutFastWorkload(t *testing.T) {
	spec := testSpec("quick", WorkloadFunc(func() error { return nil }))
	spec.Timeout = 10 * time.Second
	res, err := NewRunner().Run(&spec)
	if err != nil || res.Status != StatusOK {
		t.Errorf("fast workload under deadline: status=%q err=%v", res.Status, err)
	}
}

// --- graceful degradation ---

func TestRunAllContinuesPastFailures(t *testing.T) {
	panicky := testSpec("p", WorkloadFunc(func() error { panic("x") }))
	sleepy := testSpec("s", WorkloadFunc(func() error {
		time.Sleep(10 * time.Second)
		return nil
	}))
	sleepy.Timeout = 50 * time.Millisecond
	erroring := testSpec("e", WorkloadFunc(func() error { return errors.New("bad") }))
	good := &countingWorkload{}
	goodSpec := testSpec("g", good)

	r := NewRunner()
	results, err := r.RunAll([]*Spec{&panicky, &sleepy, &erroring, &goodSpec})
	if err == nil {
		t.Error("want first error reported")
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	for i, want := range []Status{StatusPanic, StatusTimeout, StatusError, StatusOK} {
		if results[i].Status != want {
			t.Errorf("results[%d].Status = %q, want %q", i, results[i].Status, want)
		}
	}
	if good.runs != 5 {
		t.Errorf("later spec ran %d iterations, want 5 (sweep must continue)", good.runs)
	}

	tally := TallyResults(results)
	if tally.OK != 1 || tally.Errors != 1 || tally.Timeouts != 1 || tally.Panics != 1 {
		t.Errorf("tally = %+v", tally)
	}
	if tally.AllOK() || tally.Total() != 4 {
		t.Errorf("tally summary wrong: %s", tally)
	}
	if s := tally.String(); !strings.Contains(s, "1 ok") || !strings.Contains(s, "1 panic") {
		t.Errorf("tally string = %q", s)
	}
}

// --- FaultInjector-driven error paths ---

func TestFaultInjectorErrorMidSteadyState(t *testing.T) {
	w := &countingWorkload{}
	spec := testSpec("inj-err", w)
	fi := NewFaultInjector(Fault{Benchmark: "inj-err", Iteration: 1, Err: errors.New("disk on fire")})
	r := NewRunner()
	r.Use(fi)
	res, err := r.Run(&spec)
	if err == nil || res.Status != StatusError {
		t.Fatalf("status=%q err=%v", res.Status, err)
	}
	if !strings.Contains(res.Err, "disk on fire") {
		t.Errorf("res.Err = %q", res.Err)
	}
	if res.Profile == nil {
		t.Error("profile should be attached on mid-steady-state failure")
	}
	if len(res.Durations) != 1 {
		t.Errorf("durations before failure = %d, want 1", len(res.Durations))
	}
	if fi.Injected() != 1 {
		t.Errorf("injected = %d, want 1", fi.Injected())
	}
}

func TestFaultInjectorWarmupError(t *testing.T) {
	w := &countingWorkload{}
	spec := testSpec("inj-warm", w)
	r := NewRunner()
	r.Use(NewFaultInjector(Fault{Iteration: 0, Warmup: true, Err: errors.New("cold start")}))
	res, err := r.Run(&spec)
	if err == nil || res.Status != StatusError {
		t.Fatalf("status=%q err=%v", res.Status, err)
	}
	if res.Profile != nil {
		t.Error("no profile expected for a warmup failure")
	}
	if w.runs != 0 {
		t.Errorf("workload ran %d times past an injected warmup fault", w.runs)
	}
}

func TestFaultInjectorPanic(t *testing.T) {
	spec := testSpec("inj-panic", &countingWorkload{})
	r := NewRunner()
	r.Use(NewFaultInjector(Fault{Iteration: -1, Panic: "injected chaos"}))
	res, err := r.Run(&spec)
	if err == nil || res.Status != StatusPanic {
		t.Fatalf("status=%q err=%v", res.Status, err)
	}
	if !strings.Contains(res.Err, "injected chaos") {
		t.Errorf("res.Err = %q", res.Err)
	}
}

func TestFaultInjectorDelayTriggersDeadline(t *testing.T) {
	spec := testSpec("inj-slow", &countingWorkload{})
	fi := NewFaultInjector(Fault{Delay: 10 * time.Second, Iteration: -1})
	r := NewRunner()
	r.Use(fi)
	r.TimeoutOverride = 50 * time.Millisecond
	res, err := r.Run(&spec)
	if err == nil || res.Status != StatusTimeout {
		t.Fatalf("status=%q err=%v", res.Status, err)
	}
}

func TestFaultInjectorDelayCountsInDuration(t *testing.T) {
	spec := testSpec("inj-delay", &countingWorkload{})
	fi := NewFaultInjector(Fault{Delay: 20 * time.Millisecond, Iteration: 0})
	r := NewRunner()
	r.Use(fi)
	res, err := r.Run(&spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Durations[0] < 15 {
		t.Errorf("delayed iteration took %.2fms, want >= 20ms", res.Durations[0])
	}
}

func TestFaultInjectorMatching(t *testing.T) {
	fi := NewFaultInjector()
	fi.Add(Fault{Suite: "other", Iteration: -1, Err: errors.New("wrong suite")})
	fi.Add(Fault{Benchmark: "someone-else", Iteration: -1, Err: errors.New("wrong bench")})
	w := &countingWorkload{}
	spec := testSpec("untouched", w)
	r := NewRunner()
	r.Use(fi)
	res, err := r.Run(&spec)
	if err != nil || res.Status != StatusOK {
		t.Fatalf("non-matching faults fired: status=%q err=%v", res.Status, err)
	}
	if fi.Injected() != 0 {
		t.Errorf("injected = %d, want 0", fi.Injected())
	}
}

// --- statuses on classic error paths ---

func TestStatusOnSetupAndValidationFailure(t *testing.T) {
	r := NewRunner()
	bad := Spec{Name: "bad-setup", Suite: "test", Warmup: 1, Measured: 1,
		Setup: func(Config) (Workload, error) { return nil, errors.New("no resources") }}
	res, err := r.Run(&bad)
	if err == nil || res.Status != StatusError {
		t.Errorf("setup failure: status=%q err=%v", res.Status, err)
	}

	v := &failingValidator{}
	spec := testSpec("bad-validate", v)
	res, err = r.Run(&spec)
	if err == nil || res.Status != StatusError || res.Validated {
		t.Errorf("validation failure: status=%q validated=%v err=%v", res.Status, res.Validated, err)
	}
	if !v.closed {
		t.Error("workload not closed after validation failure")
	}
}

type failingValidator struct{ closed bool }

func (v *failingValidator) RunIteration() error { return nil }
func (v *failingValidator) Validate() error     { return errors.New("checksum mismatch") }
func (v *failingValidator) Close() error        { v.closed = true; return nil }

func TestResultJSONStatusAndProfile(t *testing.T) {
	spec := testSpec("json-ok", &countingWorkload{})
	res, err := NewRunner().Run(&spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"status": "ok"`, `"profile"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}
	if strings.Contains(out, `"Profile"`) {
		t.Errorf("JSON still has capitalized Profile key:\n%s", out)
	}

	// Profile is omitted (not null) when absent, keeping the schema clean
	// for the analyze tooling.
	empty := &Result{Benchmark: "b", Suite: "s", Status: StatusTimeout}
	buf.Reset()
	if err := empty.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "profile") {
		t.Errorf("absent profile serialized:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"status": "timeout"`) {
		t.Errorf("status missing:\n%s", buf.String())
	}
}
