package chaos

import (
	"errors"
	"testing"
)

// collect records the decision stream of one point over n trials starting
// from a fresh Configure.
func collect(seed int64, rate float64, name string, n int) []bool {
	Configure(seed, rate)
	defer Disable()
	out := make([]bool, n)
	for i := range out {
		out[i] = Maybe(name)
	}
	return out
}

func TestDisabledIsInert(t *testing.T) {
	Disable()
	for i := 0; i < 1000; i++ {
		if Maybe("inert.point") {
			t.Fatal("Maybe fired while disabled")
		}
		if err := Fail("inert.point"); err != nil {
			t.Fatalf("Fail returned %v while disabled", err)
		}
	}
}

func TestZeroRateConfiguresButStaysDormant(t *testing.T) {
	Configure(42, 0)
	defer Disable()
	if Enabled() {
		t.Error("rate 0 left the engine enabled")
	}
	if Seed() != 42 {
		t.Errorf("Seed = %d, want 42", Seed())
	}
	if Maybe("dormant.point") {
		t.Error("Maybe fired at rate 0")
	}
}

func TestSameSeedSameDecisionStream(t *testing.T) {
	a := collect(7, 0.3, "det.point", 5000)
	b := collect(7, 0.3, "det.point", 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs across identical configurations", i)
		}
	}
}

func TestDifferentSeedsDifferentStreams(t *testing.T) {
	a := collect(1, 0.3, "seed.point", 5000)
	b := collect(2, 0.3, "seed.point", 5000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("seeds 1 and 2 produced identical decision streams")
	}
}

func TestFireRateTracksConfiguredRate(t *testing.T) {
	const n, rate = 20000, 0.25
	fired := 0
	for _, f := range collect(99, rate, "rate.point", n) {
		if f {
			fired++
		}
	}
	got := float64(fired) / n
	if got < rate-0.05 || got > rate+0.05 {
		t.Errorf("empirical fire rate %.3f, want ~%.2f", got, rate)
	}
}

func TestRateClamping(t *testing.T) {
	Configure(1, 7.5) // clamped to 1: every trial fires
	defer Disable()
	if Rate() != 1 {
		t.Errorf("Rate = %v, want 1 after clamping", Rate())
	}
	for i := 0; i < 100; i++ {
		if !Maybe("clamp.point") {
			t.Fatal("rate 1 did not fire on every trial")
		}
	}
	Configure(1, -3) // clamped to 0: dormant
	if Enabled() {
		t.Error("negative rate left the engine enabled")
	}
}

func TestPerPointOverride(t *testing.T) {
	Configure(5, 0) // dormant globally
	defer Disable()
	SetRate("hot.point", 1)
	if !Enabled() {
		t.Fatal("SetRate > 0 did not arm the engine")
	}
	if !Maybe("hot.point") {
		t.Error("overridden point at rate 1 did not fire")
	}
	if Maybe("cold.point") {
		t.Error("point without override fired despite global rate 0")
	}
}

func TestFailReturnsTypedError(t *testing.T) {
	Configure(3, 0)
	defer Disable()
	SetRate("io.point", 1)
	err := Fail("io.point")
	var inj *InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("Fail returned %v (%T), want *InjectedError", err, err)
	}
	if inj.Point != "io.point" {
		t.Errorf("InjectedError.Point = %q, want io.point", inj.Point)
	}
}

func TestStatsCountTrialsAndFires(t *testing.T) {
	Configure(11, 0.5)
	defer Disable()
	const n = 1000
	for i := 0; i < n; i++ {
		Maybe("stats.point")
	}
	fires := FireCount("stats.point")
	if fires == 0 || fires == n {
		t.Errorf("FireCount = %d at rate 0.5 over %d trials", fires, n)
	}
	found := false
	for _, s := range Stats() {
		if s.Name == "stats.point" {
			found = true
			if s.Trials != n || s.Fires != fires {
				t.Errorf("Stats = %+v, want Trials=%d Fires=%d", s, n, fires)
			}
		}
	}
	if !found {
		t.Error("stats.point missing from Stats()")
	}
}

func TestConfigureResetsCounters(t *testing.T) {
	Configure(1, 1)
	Maybe("reset.point")
	Configure(2, 1)
	defer Disable()
	if FireCount("reset.point") != 0 {
		t.Errorf("FireCount = %d after reconfigure, want 0", FireCount("reset.point"))
	}
}
