// Package chaos is the process-wide fault-injection engine: a seeded,
// rate-configurable registry of named injection points compiled into the
// concurrency substrates (actor mailbox delivery, fork-join chunk claiming
// and deque stealing, the RDD engine's partition tasks, recomputes, and
// shuffle exchange — rdd.task, rdd.recompute, rdd.shuffle — netstack reads
// and writes, STM commits). It generalizes the harness-level core.FaultInjector — which
// injects faults between benchmark iterations — down to the substrate
// level, so the fault *domains* built into each substrate (supervision,
// TaskError propagation, retry/breaker policies) are exercised under
// deterministic, reproducible schedules.
//
// Design constraints:
//
//   - Disabled is free: every injection point starts with a single atomic
//     load of the enabled flag and returns immediately when it is false, so
//     production and benchmark runs pay one predictable branch, never a
//     map lookup or an RNG draw.
//   - Deterministic: a decision is a pure function of (seed, point name,
//     per-point trial index). Two runs with the same seed and the same
//     per-point call sequence inject at the same trials; changing the seed
//     reshuffles every decision. No global ordering across points is
//     assumed — concurrent substrates interleave nondeterministically, but
//     each point's k-th trial is stable given k.
//   - Observable: every point records how many trials it saw and how many
//     faults it fired, so a chaos sweep can assert both that injection
//     actually happened and that the system degraded cleanly.
package chaos

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

var (
	// on gates every injection point; false means every Maybe/Fail call is
	// a single atomic load and an immediate return.
	on atomic.Bool
	// seed and rateBits are read on every enabled trial; they are atomics
	// so the decision path takes no lock.
	seed     atomic.Int64
	rateBits atomic.Uint64 // math.Float64bits of the global rate

	points sync.Map // string -> *point
)

// point is the per-injection-point state: a trial counter driving the
// deterministic decision stream, a fire counter for observability, and an
// optional rate override.
type point struct {
	name   string
	hash   uint64
	trials atomic.Int64
	fires  atomic.Int64
	// override holds a per-point rate as math.Float64bits(rate)+1; zero
	// means "use the global rate".
	override atomic.Uint64
}

func clampRate(r float64) float64 {
	switch {
	case r < 0 || math.IsNaN(r):
		return 0
	case r > 1:
		return 1
	}
	return r
}

// Configure seeds the engine and enables injection at the given global
// rate (a probability in [0, 1]; values outside are clamped). A rate of 0
// configures the seed but leaves every point dormant. Trial and fire
// counters from a previous configuration are reset so sweeps under
// different seeds report independent tallies; per-point rate overrides are
// cleared.
func Configure(newSeed int64, newRate float64) {
	newRate = clampRate(newRate)
	seed.Store(newSeed)
	rateBits.Store(math.Float64bits(newRate))
	points.Range(func(_, v any) bool {
		p := v.(*point)
		p.trials.Store(0)
		p.fires.Store(0)
		p.override.Store(0)
		return true
	})
	on.Store(newRate > 0)
}

// Disable turns every injection point back into a no-op. Per-point
// overrides and counters are preserved until the next Configure.
func Disable() { on.Store(false) }

// Enabled reports whether any injection can fire.
func Enabled() bool { return on.Load() }

// Seed returns the configured seed.
func Seed() int64 { return seed.Load() }

// Rate returns the configured global rate.
func Rate() float64 { return math.Float64frombits(rateBits.Load()) }

// SetRate overrides the fire rate of one named point (clamped to [0, 1]),
// taking precedence over the global rate, and arms the engine if it was
// dormant. Tests use this to drive a single point at rate 1 while the rest
// of the system stays quiet.
func SetRate(name string, r float64) {
	pointFor(name).override.Store(math.Float64bits(clampRate(r)) + 1)
	if r > 0 {
		on.Store(true)
	}
}

func pointFor(name string) *point {
	if v, ok := points.Load(name); ok {
		return v.(*point)
	}
	p := &point{name: name, hash: nameHash(name)}
	v, _ := points.LoadOrStore(name, p)
	return v.(*point)
}

// nameHash is FNV-1a over the point name: process-independent, so a
// pinned -chaos.seed reproduces the same decision stream across runs of
// the binary (maphash's per-process random seed broke that promise —
// two runs with identical flags could fire at different trials).
func nameHash(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the decision mixer: full-avalanche, so consecutive trial
// indices produce uncorrelated decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Maybe reports whether the named injection point should fire a fault at
// this trial. It is the single primitive every substrate compiles in; when
// the engine is disabled it is one atomic load.
func Maybe(name string) bool {
	if !on.Load() {
		return false
	}
	p := pointFor(name)
	trial := p.trials.Add(1) - 1
	r := p.rate()
	if r <= 0 {
		return false
	}
	h := splitmix64(uint64(seed.Load()) ^ p.hash ^ splitmix64(uint64(trial)))
	// Compare the top 53 bits against the rate as a dyadic fraction.
	if float64(h>>11)/float64(1<<53) < r {
		p.fires.Add(1)
		return true
	}
	return false
}

func (p *point) rate() float64 {
	if b := p.override.Load(); b != 0 {
		return math.Float64frombits(b - 1)
	}
	return math.Float64frombits(rateBits.Load())
}

// Fail returns an *InjectedError when the named point fires, nil
// otherwise — the form IO-shaped injection sites use.
func Fail(name string) error {
	if !on.Load() {
		return nil
	}
	if !Maybe(name) {
		return nil
	}
	return &InjectedError{Point: name}
}

// InjectedError is the typed error produced by firing injection points, so
// failure-handling layers (retry classification, TaskError causes) can
// distinguish injected faults from organic ones.
type InjectedError struct {
	Point string
}

// Error implements error.
func (e *InjectedError) Error() string { return "chaos: injected fault at " + e.Point }

// PointStat describes one registered injection point's counters.
type PointStat struct {
	Name   string
	Trials int64
	Fires  int64
}

// Stats returns every registered point's counters, sorted by name. A point
// registers on its first trial, so an empty stats list under an enabled
// sweep means the instrumented code paths never executed.
func Stats() []PointStat {
	var out []PointStat
	points.Range(func(_, v any) bool {
		p := v.(*point)
		out = append(out, PointStat{Name: p.name, Trials: p.trials.Load(), Fires: p.fires.Load()})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FireCount returns how many times the named point has fired since the
// last Configure.
func FireCount(name string) int64 { return pointFor(name).fires.Load() }
