package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (tol %g)", name, got, want, tol)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "Mean", Mean(xs), 5, 1e-12)
	approx(t, "Variance", Variance(xs), 32.0/7, 1e-12)
	approx(t, "StdDev", StdDev(xs), math.Sqrt(32.0/7), 1e-12)
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/singleton edge cases wrong")
	}
}

func TestGeoMean(t *testing.T) {
	approx(t, "GeoMean", GeoMean([]float64{1, 100}), 10, 1e-9)
	approx(t, "GeoMean skip", GeoMean([]float64{0, 4, 9, -1, 6}), math.Cbrt(4*9*6), 1e-9)
	if GeoMean([]float64{0, -2}) != 0 {
		t.Error("GeoMean of nonpositive values should be 0")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	approx(t, "Min", Min(xs), 1, 0)
	approx(t, "Max", Max(xs), 5, 0)
	approx(t, "Median odd", Median(xs), 3, 0)
	approx(t, "Median even", Median([]float64{1, 2, 3, 4}), 2.5, 0)
	if Min(nil) != 0 || Max(nil) != 0 || Median(nil) != 0 {
		t.Error("empty edge cases wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	approx(t, "p0", Percentile(xs, 0), 10, 0)
	approx(t, "p50", Percentile(xs, 0.5), 30, 0)
	approx(t, "p100", Percentile(xs, 1), 50, 0)
	approx(t, "p25", Percentile(xs, 0.25), 20, 1e-12)
	approx(t, "p10", Percentile(xs, 0.1), 14, 1e-12)
}

func TestWinsorize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	w := Winsorize(xs, 0.1)
	if Max(w) >= 100 {
		t.Errorf("winsorized max = %g, want < 100", Max(w))
	}
	if len(w) != len(xs) {
		t.Fatalf("length changed: %d", len(w))
	}
	// p = 0 is the identity.
	id := Winsorize(xs, 0)
	for i := range xs {
		if id[i] != xs[i] {
			t.Errorf("Winsorize(xs, 0)[%d] = %g, want %g", i, id[i], xs[i])
		}
	}
	// Does not mutate input.
	if xs[4] != 100 {
		t.Error("Winsorize mutated its input")
	}
}

func TestWinsorizePropertyBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		w := Winsorize(xs, 0.2)
		if len(w) != len(xs) {
			return false
		}
		if len(xs) == 0 {
			return true
		}
		// Winsorized values stay within the original range, and the mean
		// moves toward the median (weakly: stays within min..max).
		lo, hi := Min(xs), Max(xs)
		for _, x := range w {
			if x < lo || x > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		approx(t, "I_x(1,1)", RegIncBeta(1, 1, x), x, 1e-10)
	}
	// I_{0.5}(a,a) = 0.5 by symmetry.
	for _, a := range []float64{0.5, 2, 7.5} {
		approx(t, "I_.5(a,a)", RegIncBeta(a, a, 0.5), 0.5, 1e-10)
	}
	// Complement identity I_x(a,b) = 1 - I_{1-x}(b,a).
	approx(t, "complement", RegIncBeta(2, 5, 0.3), 1-RegIncBeta(5, 2, 0.7), 1e-10)
}

func TestStudentTCDF(t *testing.T) {
	// Symmetry around 0.
	approx(t, "CDF(0)", StudentTCDF(0, 7), 0.5, 1e-12)
	approx(t, "symmetry", StudentTCDF(1.3, 9)+StudentTCDF(-1.3, 9), 1, 1e-10)
	// df=1 is the Cauchy distribution: F(t) = 1/2 + atan(t)/pi.
	for _, tv := range []float64{-3, -1, 0.5, 2} {
		want := 0.5 + math.Atan(tv)/math.Pi
		approx(t, "cauchy", StudentTCDF(tv, 1), want, 1e-8)
	}
	// Known quantile: for df=10, P(T <= 2.228) ~ 0.975.
	approx(t, "df10", StudentTCDF(2.228, 10), 0.975, 1e-3)
	// Infinite arguments.
	if StudentTCDF(math.Inf(-1), 5) != 0 || StudentTCDF(math.Inf(1), 5) != 1 {
		t.Error("infinite-argument CDF wrong")
	}
}

func TestStudentTQuantile(t *testing.T) {
	// Round-trip: CDF(quantile(conf)) = 1-(1-conf)/2.
	for _, df := range []float64{3, 10, 30} {
		for _, conf := range []float64{0.9, 0.95, 0.99} {
			q := StudentTQuantile(conf, df)
			got := StudentTCDF(q, df)
			approx(t, "roundtrip", got, 1-(1-conf)/2, 1e-6)
		}
	}
	// Classic table value: t_{0.975, 10} = 2.228.
	approx(t, "t975df10", StudentTQuantile(0.95, 10), 2.228, 2e-3)
	if StudentTQuantile(0, 5) != 0 {
		t.Error("conf=0 quantile should be 0")
	}
	if !math.IsInf(StudentTQuantile(1, 5), 1) {
		t.Error("conf=1 quantile should be +Inf")
	}
}

func TestWelchTTest(t *testing.T) {
	// Clearly different samples: tiny p.
	a := []float64{10, 10.1, 9.9, 10.05, 9.95, 10.02, 9.98, 10.01}
	b := []float64{12, 12.1, 11.9, 12.05, 11.95, 12.02, 11.98, 12.01}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("p = %g, want << 1", res.P)
	}
	if res.T >= 0 {
		t.Errorf("t = %g, want negative (a < b)", res.T)
	}

	// Same distribution: p should typically be large.
	rng := rand.New(rand.NewSource(42))
	c := make([]float64, 30)
	d := make([]float64, 30)
	for i := range c {
		c[i] = rng.NormFloat64()
		d[i] = rng.NormFloat64()
	}
	res2, err := WelchTTest(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if res2.P < 0.001 {
		t.Errorf("same-distribution p = %g, suspiciously small", res2.P)
	}

	// Constant identical samples.
	res3, err := WelchTTest([]float64{5, 5, 5}, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res3.P != 1 {
		t.Errorf("identical constant p = %g, want 1", res3.P)
	}
	// Constant different samples.
	res4, err := WelchTTest([]float64{5, 5, 5}, []float64{6, 6})
	if err != nil {
		t.Fatal(err)
	}
	if res4.P != 0 {
		t.Errorf("distinct constant p = %g, want 0", res4.P)
	}

	if _, err := WelchTTest([]float64{1}, []float64{2, 3}); err == nil {
		t.Error("want error for insufficient data")
	}
}

func TestWelchTTestHandComputed(t *testing.T) {
	// a = {1,2,3,4}, b = {2,3,4,5}: equal variances 5/3, so
	// t = -1/sqrt(2*(5/3)/4) = -1.09544..., df = 6 exactly.
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 3, 4, 5}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "t", res.T, -1.0954451150103321, 1e-10)
	approx(t, "df", res.DF, 6, 1e-9)
	if res.P < 0.25 || res.P > 0.40 {
		t.Errorf("p = %g, want within (0.25, 0.40)", res.P)
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{10, 11, 9, 10.5, 9.5, 10.2, 9.8, 10.1}
	mean, hw, err := MeanCI(xs, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "mean", mean, Mean(xs), 1e-12)
	if hw <= 0 {
		t.Errorf("half-width = %g, want > 0", hw)
	}
	// Higher confidence gives a wider interval.
	_, hw95, _ := MeanCI(xs, 0.95)
	if hw <= hw95 {
		t.Errorf("99%% CI (%g) should be wider than 95%% CI (%g)", hw, hw95)
	}
	if _, _, err := MeanCI([]float64{1}, 0.95); err == nil {
		t.Error("want error for insufficient data")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summarize = %+v", s)
	}
}
