package stats

import "math"

// TTestResult holds the outcome of Welch's two-sample t-test, as used for
// the significance column of Tables 12–15 in the paper.
type TTestResult struct {
	T  float64 // t statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest performs Welch's unequal-variances t-test on the two samples
// and returns the two-sided p-value. The paper uses this test at
// significance level α = 0.01 to decide whether an optimization's impact on
// a benchmark is statistically significant.
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	if se == 0 {
		// Identical constant samples: no evidence of difference.
		if ma == mb {
			return TTestResult{T: 0, DF: na + nb - 2, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(ma - mb)), DF: na + nb - 2, P: 0}, nil
	}
	t := (ma - mb) / se
	df := (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	p := 2 * StudentTCDF(-math.Abs(t), df)
	return TTestResult{T: t, DF: df, P: p}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// StudentTCDF returns P(T <= t) for a Student-t distribution with df
// degrees of freedom.
func StudentTCDF(t, df float64) float64 {
	if math.IsInf(t, -1) {
		return 0
	}
	if math.IsInf(t, 1) {
		return 1
	}
	// F(t) relates to the regularized incomplete beta function:
	// for t >= 0, F(t) = 1 - I_x(df/2, 1/2)/2 with x = df/(df+t^2).
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentTQuantile returns the t value such that P(|T| <= t) = conf for a
// Student-t distribution with df degrees of freedom (two-sided). It is used
// to build the 99% confidence intervals of Figure 6.
func StudentTQuantile(conf, df float64) float64 {
	if conf <= 0 {
		return 0
	}
	if conf >= 1 {
		return math.Inf(1)
	}
	target := 1 - (1-conf)/2 // one-sided CDF target
	lo, hi := 0.0, 1.0
	for StudentTCDF(hi, df) < target {
		hi *= 2
		if hi > 1e9 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentTCDF(mid, df) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MeanCI returns the mean of xs and the half-width of its two-sided
// confidence interval at the given confidence level.
func MeanCI(xs []float64, conf float64) (mean, halfWidth float64, err error) {
	if len(xs) < 2 {
		return 0, 0, ErrInsufficientData
	}
	mean = Mean(xs)
	se := StdDev(xs) / math.Sqrt(float64(len(xs)))
	t := StudentTQuantile(conf, float64(len(xs)-1))
	return mean, t * se, nil
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes style).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpMin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
