// Package stats provides the statistical machinery used by the paper's
// evaluation (§6 and supplement §C/§G): descriptive statistics, geometric
// means, winsorized outlier filtering, Welch's t-test with p-values, and
// Student-t confidence intervals.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a statistic needs more observations
// than were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values are skipped (matching the common benchmarking
// convention of excluding zero measurements).
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Winsorize returns a copy of xs with values below the p-th percentile
// raised to it and values above the (1-p)-th percentile lowered to it.
// The paper applies winsorized filtering to remove outliers from the
// optimization-impact measurements (supplement §C). p must be in [0, 0.5).
func Winsorize(xs []float64, p float64) []float64 {
	out := append([]float64(nil), xs...)
	if len(out) == 0 || p <= 0 {
		return out
	}
	if p >= 0.5 {
		p = 0.499
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	lo := percentileSorted(s, p)
	hi := percentileSorted(s, 1-p)
	for i, x := range out {
		if x < lo {
			out[i] = lo
		} else if x > hi {
			out[i] = hi
		}
	}
	return out
}

// Percentile returns the q-th percentile (q in [0,1]) of xs using linear
// interpolation between closest ranks.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, q)
}

func percentileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary bundles descriptive statistics of one sample.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	Min, Max float64
	Median   float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
	}
}
