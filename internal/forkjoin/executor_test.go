package forkjoin

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestForCoversAllIndices checks that every index in [0, n) is processed
// exactly once across grain choices, including the automatic one.
func TestForCoversAllIndices(t *testing.T) {
	p := Shared()
	for _, tc := range []struct{ n, grain int }{
		{1, 1}, {7, 1}, {7, 3}, {100, 1}, {100, 0}, {1000, 17}, {1000, 0},
		{3, 100}, // grain larger than n: single-chunk fast path
	} {
		hits := make([]atomic.Int32, tc.n)
		p.For(tc.n, tc.grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d grain=%d: index %d processed %d times", tc.n, tc.grain, i, got)
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	ran := false
	Shared().For(0, 1, func(lo, hi int) { ran = true })
	Shared().For(-5, 1, func(lo, hi int) { ran = true })
	if ran {
		t.Error("body ran for empty range")
	}
}

// TestForMaxBoundsConcurrency checks that maxPar=1 never runs two chunks
// at once (no helpers are enqueued, the caller runs everything).
func TestForMaxBoundsConcurrency(t *testing.T) {
	var running, peak atomic.Int32
	Shared().ForMax(64, 1, 1, func(lo, hi int) {
		if r := running.Add(1); r > peak.Load() {
			peak.Store(r)
		}
		time.Sleep(50 * time.Microsecond)
		running.Add(-1)
	})
	if got := peak.Load(); got != 1 {
		t.Errorf("maxPar=1 peak concurrency = %d", got)
	}
}

// TestForNestedExecutor exercises a For issued from inside a For body —
// the shape the RDD engine hits when a shuffle runs inside partition
// tasks. Caller-runs chunk claiming must complete it without deadlock.
func TestForNestedExecutor(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		var total atomic.Int64
		Shared().For(8, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				Shared().For(100, 7, func(ilo, ihi int) {
					total.Add(int64(ihi - ilo))
				})
			}
		})
		if total.Load() != 800 {
			t.Errorf("nested total = %d, want 800", total.Load())
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested For deadlocked")
	}
}

// TestForNestedUnderOnce reproduces the exact engine hazard: N tasks all
// enter a sync.Once whose body runs a nested parallel-for while the
// losers block inside the Once on pool workers.
func TestForNestedUnderOnce(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		var once sync.Once
		var inner atomic.Int64
		Shared().For(16, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				once.Do(func() {
					Shared().For(64, 1, func(ilo, ihi int) {
						inner.Add(int64(ihi - ilo))
					})
				})
			}
		})
		if inner.Load() != 64 {
			t.Errorf("inner total = %d, want 64", inner.Load())
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("For under sync.Once deadlocked")
	}
}

// TestExecutorConcurrentForRace hammers the shared pool with concurrent,
// overlapping For calls (the shape of parallel benchmark workloads all
// running on one executor); run under -race by make stress.
func TestExecutorConcurrentForRace(t *testing.T) {
	const callers = 8
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				var sum atomic.Int64
				n := 50 + c*13 + iter
				Shared().For(n, 0, func(lo, hi int) {
					local := int64(0)
					for i := lo; i < hi; i++ {
						local += int64(i)
					}
					sum.Add(local)
				})
				want := int64(n*(n-1)) / 2
				if sum.Load() != want {
					t.Errorf("caller %d iter %d: sum = %d, want %d", c, iter, sum.Load(), want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestForOnPrivatePool checks For against a dedicated (closeable) pool,
// including after Close: the caller-runs discipline still completes the
// range even though helpers are dropped.
func TestForOnPrivatePool(t *testing.T) {
	p := NewPool(2)
	var n atomic.Int64
	p.For(100, 3, func(lo, hi int) { n.Add(int64(hi - lo)) })
	if n.Load() != 100 {
		t.Errorf("pre-close total = %d", n.Load())
	}
	p.Close()
	n.Store(0)
	p.For(100, 3, func(lo, hi int) { n.Add(int64(hi - lo)) })
	if n.Load() != 100 {
		t.Errorf("post-close total = %d (caller must finish the range alone)", n.Load())
	}
}
