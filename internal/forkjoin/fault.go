// Fault domain of the fork–join substrate. A panic inside a task body or a
// parallel-for chunk must never take down a pool worker, leak a helper
// goroutine, or wedge the completion barrier; it is converted into a
// *TaskError (first failure wins) and the job's remaining chunks are
// cancelled via a per-job cancellation token checked at every chunk claim.
// The legacy For/ForMax/Join APIs re-panic the TaskError at the join point
// — the fork/join exception-propagation discipline — while the new
// ForE/ForMaxE entry points surface it as an ordinary error.
package forkjoin

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"renaissance/internal/chaos"
	"renaissance/internal/metrics"
)

// TaskError wraps the first panic recovered from a parallel job's chunk or
// from a pool task, with the panicking goroutine's stack attached. Sibling
// chunks of the same job are cancelled at their next chunk claim; chunks
// already executing run to completion before the barrier releases, so no
// goroutine outlives the join.
type TaskError struct {
	// Index is the start index of the chunk whose body panicked, or -1 for
	// a pool task submitted via Submit/Fork.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the stack of the panicking goroutine.
	Stack []byte
}

// Error implements error.
func (e *TaskError) Error() string {
	return fmt.Sprintf("forkjoin: task panicked at index %d: %v", e.Index, e.Value)
}

// Unwrap exposes a panic value that was itself an error (e.g. a
// chaos.InjectedError), so errors.Is/As see through the wrapper.
func (e *TaskError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// parJob is the shared state of one ForMaxE invocation: the chunk-claim
// counter, the completion count, the cancellation token, and the
// first-failure slot. Every executor (caller and helpers) drains the same
// job; cancellation is observed at chunk-claim granularity.
type parJob struct {
	n, grain  int
	chunks    int64
	next      atomic.Int64
	completed atomic.Int64
	cancelled atomic.Bool
	failure   atomic.Pointer[TaskError]
	done      chan struct{}
}

// drain claims and executes chunks until the range is exhausted or the job
// is cancelled. The cancellation token is checked before every claim, so a
// failing job stops scheduling new work within one chunk per executor.
func (j *parJob) drain(loc metrics.Local, body func(lo, hi int)) {
	for {
		if j.cancelled.Load() {
			return
		}
		lo := int(j.next.Add(int64(j.grain))) - j.grain
		if lo >= j.n {
			return
		}
		// Counted per successful claim (= per chunk), not per fetch-add
		// attempt, so metric totals do not depend on scheduling timing.
		loc.IncAtomic()
		hi := lo + j.grain
		if hi > j.n {
			hi = j.n
		}
		j.runChunk(lo, hi, body)
		if j.completed.Add(1) == j.chunks {
			close(j.done)
			return
		}
	}
}

// runChunk executes one chunk under a recover that converts a panic into
// the job's failure and cancels the siblings.
func (j *parJob) runChunk(lo, hi int, body func(lo, hi int)) {
	defer func() {
		if p := recover(); p != nil {
			j.fail(lo, p)
		}
	}()
	if chaos.Maybe("forkjoin.claim") {
		panic(&chaos.InjectedError{Point: "forkjoin.claim"})
	}
	body(lo, hi)
}

// fail records the job's first failure and cancels the remaining chunks. A
// nested job's re-panicked *TaskError keeps its identity (the innermost
// failing chunk) instead of being re-wrapped at every level.
func (j *parJob) fail(lo int, p any) {
	te, ok := p.(*TaskError)
	if !ok {
		te = &TaskError{Index: lo, Value: p, Stack: debug.Stack()}
	}
	j.failure.CompareAndSwap(nil, te)
	j.cancel()
}

// cancel flips the cancellation token and swallows every not-yet-claimed
// chunk through the same claim counter the executors use, so each chunk is
// accounted exactly once (executed or swallowed) and the completion
// barrier releases exactly when the last in-flight chunk finishes — no
// stuck barrier, no helper outliving the join, whichever executor fails.
func (j *parJob) cancel() {
	if j.cancelled.Swap(true) {
		return
	}
	var skipped int64
	for {
		lo := int(j.next.Add(int64(j.grain))) - j.grain
		if lo >= j.n {
			break
		}
		skipped++
	}
	if skipped > 0 && j.completed.Add(skipped) == j.chunks {
		close(j.done)
	}
}
