package forkjoin

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Fan-out benchmarks: the shared executor's chunked parallel-for against
// the seed's goroutine-per-task fan-out (what the RDD engine and the
// parallel stream terminals did before PR 3). Task bodies are small, so
// the measurement is dominated by scheduling overhead — the Task Bench
// observation the ISSUE cites. Run via `make bench` at -cpu 1,2,4,8.

// fanOutTasks matches partition-task granularity: hundreds of small
// tasks per barrier, not millions.
const fanOutTasks = 512

var fanOutSink int64

// fanOutWork is a tiny deterministic task body (~200 ALU ops).
func fanOutWork(seed int) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + 1
	for i := 0; i < 200; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return int64(x)
}

func BenchmarkExecutorFanOut(b *testing.B) {
	p := Shared()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum atomic.Int64
		p.For(fanOutTasks, 1, func(lo, hi int) {
			var local int64
			for t := lo; t < hi; t++ {
				local += fanOutWork(t)
			}
			sum.Add(local)
		})
		fanOutSink = sum.Load()
	}
}

func BenchmarkGoroutineFanOut(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum atomic.Int64
		var wg sync.WaitGroup
		for t := 0; t < fanOutTasks; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				sum.Add(fanOutWork(t))
			}(t)
		}
		wg.Wait()
		fanOutSink = sum.Load()
	}
}
