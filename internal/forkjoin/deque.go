// Chase–Lev lock-free work-stealing deque (Chase & Lev, SPAA 2005; memory
// ordering per Lê et al., PPoPP 2013, conservatively realized with Go's
// sequentially consistent atomics). The owner pushes and pops at the bottom
// without locking; thieves steal from the top with a single CAS. This
// replaces the earlier mutex-guarded slice deque, whose steal path shifted
// the slice head (`tasks = tasks[1:]`) and thereby pinned every stolen task
// in the backing array until the next reallocation.
//
// The deque is generic so that every per-worker run queue in the repo can
// share one implementation: the fork–join pool stores *Task, and the actor
// scheduler stores *actors.Ref (runnable mailboxes).
package forkjoin

import (
	"sync/atomic"

	"renaissance/internal/chaos"
)

// ring is a power-of-two circular array of slots. Slots are accessed
// atomically because a thief may read a slot while the owner writes a
// neighbouring index; an index i lives at slots[i&mask].
type ring[T any] struct {
	mask  int64
	slots []atomic.Pointer[T]
}

func newRing[T any](capacity int64) *ring[T] {
	return &ring[T]{mask: capacity - 1, slots: make([]atomic.Pointer[T], capacity)}
}

func (r *ring[T]) cap() int64        { return r.mask + 1 }
func (r *ring[T]) get(i int64) *T    { return r.slots[i&r.mask].Load() }
func (r *ring[T]) put(i int64, t *T) { r.slots[i&r.mask].Store(t) }

// grow returns a ring of twice the capacity holding the entries [top,
// bottom). The old ring's slots are left intact: a thief racing with the
// growth may still read index `top` from the old ring, and both rings hold
// the same element there.
func (r *ring[T]) grow(top, bottom int64) *ring[T] {
	nr := newRing[T](2 * r.cap())
	for i := top; i < bottom; i++ {
		nr.put(i, r.get(i))
	}
	return nr
}

const initialDequeCap = 64

// Deque is a per-worker work-stealing deque of *T. The zero value is ready
// to use. Push and Pop may only be called by the owning worker; Steal and
// Size may be called from any goroutine. top and bottom sit on separate
// cache lines so that thieves hammering top do not invalidate the owner's
// line.
type Deque[T any] struct {
	bottom atomic.Int64
	_      [56]byte
	top    atomic.Int64
	_      [56]byte
	arr    atomic.Pointer[ring[T]]
	// ownerTop is the owner's cached lower bound of top (top is
	// monotone), refreshed only when the ring looks full: the common push
	// does not read the thief-contended top line at all.
	ownerTop int64
}

// Push appends an element at the bottom (owner only).
func (d *Deque[T]) Push(t *T) {
	b := d.bottom.Load()
	a := d.arr.Load()
	if a == nil {
		a = newRing[T](initialDequeCap)
		d.arr.Store(a)
	}
	if b-d.ownerTop >= a.cap() {
		d.ownerTop = d.top.Load()
		if b-d.ownerTop >= a.cap() {
			a = a.grow(d.ownerTop, b)
			d.arr.Store(a)
		}
	}
	a.put(b, t)
	d.bottom.Store(b + 1)
}

// Pop removes and returns the most recently pushed element (owner only), or
// nil if the deque is empty or the last element was lost to a racing thief.
// Slots the owner wins are cleared so the popped element is not pinned by
// the ring.
func (d *Deque[T]) Pop() *T {
	a := d.arr.Load()
	if a == nil {
		return nil
	}
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore the canonical empty state (bottom == top).
		d.bottom.Store(t)
		return nil
	}
	task := a.get(b)
	if t == b {
		// Last element: race thieves for it with a CAS on top.
		if !d.top.CompareAndSwap(t, t+1) {
			task = nil // a thief got there first
		}
		d.bottom.Store(t + 1)
		if task != nil {
			a.put(b, nil)
		}
		return task
	}
	// t < b: thieves can no longer reach index b (any thief that reads
	// top == b must then read bottom == b and give up), so the owner owns
	// the slot outright and may clear it.
	a.put(b, nil)
	return task
}

// Steal removes and returns the oldest element, or nil if the deque is
// empty or the CAS lost a race (the caller moves on to the next victim).
// The won slot is not cleared — only the owner may write slots, so a stolen
// element's reference persists in the ring until that index is reused; the
// ring's size is bounded, unlike the slice-shift steal this replaces.
func (d *Deque[T]) Steal() *T {
	// Chaos: a missed steal is indistinguishable from losing the CAS race,
	// so injecting one exercises every caller's retry/park path without
	// breaking the deque's invariants.
	if chaos.Maybe("forkjoin.steal") {
		return nil
	}
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	a := d.arr.Load()
	if a == nil {
		return nil
	}
	task := a.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return task
}

// Size returns an approximate element count. It is exact when no push, pop,
// or steal is concurrently in flight; concurrent callers (parking workers
// probing for work) may see a stale but never a wildly wrong value.
func (d *Deque[T]) Size() int64 {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return n
}
