package forkjoin

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestInvokeSimple(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	got := p.Invoke(func(w *Worker) any { return 21 * 2 })
	if got != 42 {
		t.Errorf("Invoke = %v, want 42", got)
	}
}

// fibTask computes fib recursively with fork/join — the classic shape.
func fibTask(n int) Fn {
	return func(w *Worker) any {
		if n < 2 {
			return n
		}
		left := w.Fork(fibTask(n - 1))
		right := fibTask(n - 2)(w)
		return w.Join(left).(int) + right.(int)
	}
}

func TestRecursiveForkJoin(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	got := p.Invoke(fibTask(15))
	if got != 610 {
		t.Errorf("fib(15) = %v, want 610", got)
	}
}

func TestParallelSum(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	data := make([]int, 100000)
	for i := range data {
		data[i] = i + 1
	}
	var sum func(lo, hi int) Fn
	sum = func(lo, hi int) Fn {
		return func(w *Worker) any {
			if hi-lo <= 1000 {
				s := 0
				for _, v := range data[lo:hi] {
					s += v
				}
				return s
			}
			mid := (lo + hi) / 2
			left := w.Fork(sum(lo, mid))
			right := sum(mid, hi)(w)
			return w.Join(left).(int) + right.(int)
		}
	}
	got := p.Invoke(sum(0, len(data)))
	want := len(data) * (len(data) + 1) / 2
	if got != want {
		t.Errorf("sum = %v, want %d", got, want)
	}
}

func TestInvokeAll(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	got := p.Invoke(func(w *Worker) any {
		results := w.InvokeAll(
			func(*Worker) any { return 1 },
			func(*Worker) any { return 2 },
			func(*Worker) any { return 3 },
		)
		total := 0
		for _, r := range results {
			total += r.(int)
		}
		return total
	})
	if got != 6 {
		t.Errorf("InvokeAll total = %v, want 6", got)
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				v := p.Invoke(func(*Worker) any { return g + i }).(int)
				total.Add(int64(v))
			}
		}(g)
	}
	wg.Wait()
	want := int64(0)
	for g := 0; g < 8; g++ {
		for i := 0; i < 20; i++ {
			want += int64(g + i)
		}
	}
	if total.Load() != want {
		t.Errorf("total = %d, want %d", total.Load(), want)
	}
}

func TestTaskState(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	task := p.Submit(func(*Worker) any { return "ok" })
	<-task.doneCh
	if !task.IsDone() {
		t.Error("task not done after doneCh closed")
	}
	if task.Result() != "ok" {
		t.Errorf("Result = %v", task.Result())
	}
}

func TestParallelismAndIndex(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	if p.Parallelism() != 3 {
		t.Errorf("Parallelism = %d", p.Parallelism())
	}
	idx := p.Invoke(func(w *Worker) any {
		if w.Pool() != p {
			t.Error("worker pool mismatch")
		}
		return w.Index()
	}).(int)
	if idx < 0 || idx >= 3 {
		t.Errorf("worker index = %d", idx)
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
}

func TestDefaultPoolSize(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Parallelism() < 1 {
		t.Errorf("Parallelism = %d, want >= 1", p.Parallelism())
	}
}

// Property: fork-join parallel sum of arbitrary int8 slices matches the
// sequential sum.
func TestPropertyParallelSumMatchesSequential(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	f := func(data []int8) bool {
		want := 0
		for _, v := range data {
			want += int(v)
		}
		var sum func(lo, hi int) Fn
		sum = func(lo, hi int) Fn {
			return func(w *Worker) any {
				if hi-lo <= 4 {
					s := 0
					for _, v := range data[lo:hi] {
						s += int(v)
					}
					return s
				}
				mid := (lo + hi) / 2
				l := w.Fork(sum(lo, mid))
				r := sum(mid, hi)(w)
				return w.Join(l).(int) + r.(int)
			}
		}
		got := p.Invoke(sum(0, len(data))).(int)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDequeOperations(t *testing.T) {
	var d Deque[Task]
	if d.Pop() != nil || d.Steal() != nil {
		t.Error("empty deque should return nil")
	}
	t1, t2, t3 := newTask(nil), newTask(nil), newTask(nil)
	d.Push(t1)
	d.Push(t2)
	d.Push(t3)
	if got := d.Pop(); got != t3 {
		t.Error("pop should be LIFO (owner side)")
	}
	if got := d.Steal(); got != t1 {
		t.Error("steal should be FIFO (thief side)")
	}
	if got := d.Pop(); got != t2 {
		t.Error("remaining element wrong")
	}
}
