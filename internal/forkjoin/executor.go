// Shared data-parallel executor. The RDD engine and the parallel stream
// terminals used to fan out one unbounded goroutine per partition (or per
// element); now every partition-shaped workload runs on one process-wide
// fork–join pool through a chunked parallel-for.
//
// For splits [0, n) into chunks and lets executors claim chunks from a
// single atomic counter (guided self-scheduling, the classic parallel-for
// discipline). Three properties matter here:
//
//   - Caller-runs: the calling goroutine claims and executes chunks
//     itself. Pool workers only add parallelism opportunistically, via
//     helper tasks enqueued with a non-blocking submit. A For therefore
//     always makes progress even when every pool worker is blocked —
//     which genuinely happens in this engine: shuffles execute *inside*
//     partition tasks (a wide RDD's partitions all call into a
//     sync.Once-guarded shuffle), so a worker can invoke a nested For
//     while its siblings are parked in the Once. With a blocking
//     barrier-style fan-out that is a deadlock; with caller-runs the
//     nested For drains its own counter and completes.
//   - Bounded parallelism: at most Parallelism()+1 goroutines (the
//     workers plus the caller) ever execute chunks, however large n is —
//     replacing the goroutine-per-partition fan-out whose cost the Task
//     Bench results flag as the dominant overhead at task granularity.
//   - Chunked granularity: grain 0 picks n/(par·4) so stealing has
//     something to balance without per-element scheduling overhead;
//     partition-shaped callers pass grain 1 because each index is already
//     a coarse task.
//
// Helper tasks land on the pool's submission queue and are executed (or
// stolen) by the Chase–Lev workers like any fork–join task; a helper that
// arrives after the counter is drained simply exits.
package forkjoin

import (
	"sync"

	"renaissance/internal/metrics"
)

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide pool used by the data-parallel layers
// (rdd partition evaluation, shuffle producers/consumers, the parallel
// stream terminals). It is created on first use with GOMAXPROCS workers
// and never closed.
func Shared() *Pool {
	sharedOnce.Do(func() {
		sharedPool = NewPool(0)
	})
	return sharedPool
}

// For runs body over chunked subranges of [0, n) on the shared pool.
// See Pool.ForMax for the execution discipline.
func For(n, grain int, body func(lo, hi int)) {
	Shared().ForMax(n, grain, 0, body)
}

// ForE is For surfacing a chunk panic as a *TaskError instead of
// re-panicking it at the join.
func ForE(n, grain int, body func(lo, hi int)) error {
	return Shared().ForMaxE(n, grain, 0, body)
}

// For runs body over chunked subranges of [0, n) on this pool, with the
// calling goroutine participating. It returns when every index has been
// processed exactly once.
func (p *Pool) For(n, grain int, body func(lo, hi int)) {
	p.ForMax(n, grain, 0, body)
}

// ForE is Pool.For surfacing a chunk panic as a *TaskError.
func (p *Pool) ForE(n, grain int, body func(lo, hi int)) error {
	return p.ForMaxE(n, grain, 0, body)
}

// chunksPerExecutor is the load-balancing factor of the automatic grain:
// enough chunks per executor that an uneven body still spreads, few
// enough that claim traffic stays negligible.
const chunksPerExecutor = 4

// ForMax is For with an explicit concurrency bound: at most maxPar
// executors (counting the caller) run chunks concurrently; maxPar <= 0
// means the pool's full width plus the caller. grain <= 0 picks an
// automatic chunk size of n/(par·chunksPerExecutor), at least 1.
//
// A panic in body cancels the job's remaining chunks and is re-panicked
// here, at the join point, as a *TaskError — the legacy fork/join
// exception-propagation contract. Use ForMaxE to receive it as an error.
func (p *Pool) ForMax(n, grain, maxPar int, body func(lo, hi int)) {
	if err := p.ForMaxE(n, grain, maxPar, body); err != nil {
		panic(err)
	}
}

// ForMaxE runs body over chunked subranges of [0, n) with the caller
// participating, like ForMax, and returns the job's first failure as a
// *TaskError instead of panicking. A failing chunk cancels its siblings
// via the job's cancellation token (checked at every chunk claim); chunks
// already executing finish before ForMaxE returns, so no helper goroutine
// outlives the call and the barrier can never be left stuck.
func (p *Pool) ForMaxE(n, grain, maxPar int, body func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	par := len(p.workers) + 1 // workers plus the calling goroutine
	if maxPar > 0 && maxPar < par {
		par = maxPar
	}
	if grain <= 0 {
		grain = n / (par * chunksPerExecutor)
		if grain < 1 {
			grain = 1
		}
	}
	chunks := (n + grain - 1) / grain
	j := &parJob{n: n, grain: grain, chunks: int64(chunks)}
	if chunks == 1 {
		// Pre-claim the single chunk so a failure's cancel sweep finds
		// nothing left to swallow (there is no barrier to release).
		j.next.Store(int64(n))
		j.runChunk(0, n, body)
		if te := j.failure.Load(); te != nil {
			return te
		}
		return nil
	}
	j.done = make(chan struct{})

	helpers := par - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	for i := 0; i < helpers; i++ {
		if !p.trySubmit(func(w *Worker) any {
			j.drain(w.local, body)
			return nil
		}) {
			break // queue full or pool closed; the caller still finishes
		}
	}

	loc := metrics.Acquire()
	j.drain(loc, body)
	// The counter is drained; wait for chunks still in flight on workers.
	loc.IncPark()
	<-j.done
	// The barrier release is counted by the caller, not by whichever
	// drain closed the channel: a helper bumping after close would race
	// the caller's return and could land in a later measurement window.
	loc.IncNotify()
	if te := j.failure.Load(); te != nil {
		return te
	}
	return nil
}

// Help submits fn as a completion-quiet helper task: it runs on a pool
// worker when one frees up, nobody joins it, and a full queue or closed
// pool drops it (returning false). Engine-level schedulers that manage
// their own completion barriers — the RDD recovery engine's partition
// jobs and speculative straggler duplicates — use Help for opportunistic
// parallelism the same way ForMaxE uses its internal helpers: correctness
// must never depend on the helper running, and the caller must be
// prepared to do the work itself when Help returns false.
func (p *Pool) Help(fn func()) bool {
	return p.trySubmit(func(w *Worker) any {
		fn()
		return nil
	})
}

// trySubmit enqueues a task without ever blocking: a full submission
// queue or a closed pool drops the task. Used for the optional For
// helpers, which are pure parallelism hints — correctness never depends
// on them running. Helper tasks are completion-quiet: nobody joins them,
// and a helper finishing after its For has returned must not leak
// completion bumps into a later measurement window.
func (p *Pool) trySubmit(fn Fn) bool {
	metrics.IncObject()
	t := newTask(fn)
	t.quiet = true
	select {
	case p.submit <- t:
		p.wakeOne()
		return true
	default:
		return false
	}
}
