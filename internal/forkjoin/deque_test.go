package forkjoin

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Every pushed task must be taken exactly once, split between the owner's
// pops and concurrent thieves. Run with -race.
func TestDequeConcurrentOwnership(t *testing.T) {
	var d Deque[Task]
	const n = 50000
	const thieves = 4

	taken := make([]atomic.Int32, n)
	var total atomic.Int64
	done := make(chan struct{})

	take := func(task *Task) {
		i := task.result.(int)
		if taken[i].Add(1) != 1 {
			t.Errorf("task %d taken twice", i)
		}
		total.Add(1)
	}

	var wg sync.WaitGroup
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if task := d.Steal(); task != nil {
					take(task)
					continue
				}
				select {
				case <-done:
					// Drain whatever the owner left behind.
					for task := d.Steal(); task != nil; task = d.Steal() {
						take(task)
					}
					return
				default:
					runtime.Gosched()
				}
			}
		}()
	}

	for i := 0; i < n; i++ {
		task := newTask(nil)
		task.result = i
		d.Push(task)
		if i%3 == 0 {
			if task := d.Pop(); task != nil {
				take(task)
			}
		}
	}
	for task := d.Pop(); task != nil; task = d.Pop() {
		take(task)
	}
	close(done)
	wg.Wait()
	// The owner can race one last steal; sweep any leftovers.
	for task := d.Steal(); task != nil; task = d.Steal() {
		take(task)
	}

	if total.Load() != n {
		t.Fatalf("took %d tasks, want %d", total.Load(), n)
	}
	for i := range taken {
		if taken[i].Load() != 1 {
			t.Fatalf("task %d taken %d times", i, taken[i].Load())
		}
	}
}

func TestDequeGrowthPreservesOrder(t *testing.T) {
	var d Deque[Task]
	const n = initialDequeCap * 8 // force several growths
	tasks := make([]*Task, n)
	for i := range tasks {
		tasks[i] = newTask(nil)
		d.Push(tasks[i])
	}
	// Owner pops LIFO.
	for i := n - 1; i >= 0; i-- {
		if got := d.Pop(); got != tasks[i] {
			t.Fatalf("pop %d: wrong task", i)
		}
	}
	if d.Pop() != nil {
		t.Fatal("deque should be empty")
	}
}

func TestDequeStealFIFOAfterGrowth(t *testing.T) {
	var d Deque[Task]
	const n = initialDequeCap * 4
	tasks := make([]*Task, n)
	for i := range tasks {
		tasks[i] = newTask(nil)
		d.Push(tasks[i])
	}
	for i := 0; i < n; i++ {
		if got := d.Steal(); got != tasks[i] {
			t.Fatalf("steal %d: wrong task", i)
		}
	}
	if d.Steal() != nil {
		t.Fatal("deque should be empty")
	}
}

// The old slice-shift steal (`tasks = tasks[1:]`) kept every stolen task
// reachable through the backing array. The ring deque must not pin tasks
// the owner has popped: all slots it vacates are cleared, so the tasks
// become collectable immediately.
func TestDequePopDoesNotPinTasks(t *testing.T) {
	var d Deque[Task]
	const n = 100
	collected := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		task := newTask(nil)
		task.result = &struct{ pad [1024]byte }{}
		runtime.SetFinalizer(task, func(*Task) { collected <- struct{}{} })
		d.Push(task)
	}
	for d.Pop() != nil {
	}
	// All ring slots the owner vacated must be nil — no lingering refs.
	a := d.arr.Load()
	if a == nil {
		t.Fatal("ring not allocated")
	}
	for i := range a.slots {
		if a.slots[i].Load() != nil {
			t.Fatalf("slot %d still pins a popped task", i)
		}
	}
	// And the GC can actually reclaim them.
	deadline := time.After(5 * time.Second)
	for got := 0; got < n; {
		runtime.GC()
		select {
		case <-collected:
			got++
		case <-deadline:
			t.Fatalf("only %d/%d popped tasks were collected; deque pins the rest", got, n)
		}
	}
}

// Interleaved push/pop around the empty boundary — the trickiest Chase–Lev
// region (bottom == top) — must stay consistent.
func TestDequeEmptyBoundary(t *testing.T) {
	var d Deque[Task]
	for i := 0; i < 1000; i++ {
		if d.Pop() != nil || d.Steal() != nil {
			t.Fatal("empty deque returned a task")
		}
		task := newTask(nil)
		d.Push(task)
		if got := d.Pop(); got != task {
			t.Fatalf("iteration %d: pop returned %v", i, got)
		}
	}
}
