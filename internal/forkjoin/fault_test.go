package forkjoin

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEPanicReturnsTaskError(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	err := p.ForE(1000, 1, func(lo, hi int) {
		if lo == 500 {
			panic("chunk failure")
		}
	})
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("ForE error = %v, want *TaskError", err)
	}
	if te.Index != 500 || te.Value != "chunk failure" {
		t.Errorf("TaskError = {Index:%d Value:%v}, want {500 chunk failure}", te.Index, te.Value)
	}
	if len(te.Stack) == 0 {
		t.Error("TaskError carries no stack")
	}
}

func TestForEPanicSingleChunkFastPath(t *testing.T) {
	// n <= grain takes the no-barrier fast path; the failure must still
	// surface as a TaskError, not escape as a panic.
	p := NewPool(2)
	defer p.Close()

	err := p.ForE(3, 10, func(lo, hi int) { panic("tiny") })
	var te *TaskError
	if !errors.As(err, &te) || te.Value != "tiny" {
		t.Fatalf("single-chunk ForE error = %v, want TaskError(tiny)", err)
	}
}

func TestForPanicRepanicsAtJoin(t *testing.T) {
	// The legacy For keeps the fork/join exception-propagation contract:
	// the TaskError is re-panicked at the join point.
	p := NewPool(4)
	defer p.Close()

	defer func() {
		p := recover()
		te, ok := p.(*TaskError)
		if !ok {
			t.Fatalf("recovered %v (%T), want *TaskError", p, p)
		}
		if te.Value != "legacy" {
			t.Errorf("TaskError.Value = %v, want legacy", te.Value)
		}
	}()
	p.For(100, 1, func(lo, hi int) {
		if lo == 50 {
			panic("legacy")
		}
	})
	t.Fatal("For returned normally after a chunk panic")
}

func TestForEFirstFailureWinsAndCancels(t *testing.T) {
	// Exactly one failure is reported; sibling chunks stop being claimed
	// after cancellation, and the barrier still releases.
	p := NewPool(4)
	defer p.Close()

	var executed atomic.Int64
	err := p.ForE(10000, 1, func(lo, hi int) {
		executed.Add(1)
		panic(lo) // every chunk fails; first one in wins
	})
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("error = %v, want *TaskError", err)
	}
	if te.Value.(int) != te.Index {
		t.Errorf("winner Index %d != Value %v", te.Index, te.Value)
	}
	// Cancellation is claim-granular: at most one in-flight chunk per
	// executor (workers + caller) runs after the first failure.
	if n := executed.Load(); n > int64(p.Parallelism()+1) {
		t.Errorf("%d chunks executed after universal failure, want <= %d",
			n, p.Parallelism()+1)
	}
}

func TestInvokePanicRepanicsTaskError(t *testing.T) {
	p := NewPool(2)
	defer p.Close()

	defer func() {
		te, ok := recover().(*TaskError)
		if !ok || te.Value != "task" || te.Index != -1 {
			t.Fatalf("recovered %v, want TaskError{Index:-1 Value:task}", te)
		}
	}()
	p.Invoke(func(w *Worker) any { panic("task") })
	t.Fatal("Invoke returned normally after a task panic")
}

func TestSubmitPanicSurfacesViaErr(t *testing.T) {
	p := NewPool(2)
	defer p.Close()

	task := p.Submit(func(w *Worker) any { panic("submitted") })
	deadline := time.Now().Add(5 * time.Second)
	for !task.IsDone() {
		if time.Now().After(deadline) {
			t.Fatal("panicked task never completed")
		}
		time.Sleep(100 * time.Microsecond)
	}
	var te *TaskError
	if !errors.As(task.Err(), &te) || te.Value != "submitted" {
		t.Fatalf("task.Err() = %v, want TaskError(submitted)", task.Err())
	}
}

func TestJoinRepanicsNestedTaskIdentity(t *testing.T) {
	// A nested fork whose panic crosses two joins keeps the innermost
	// TaskError identity instead of being re-wrapped per level.
	p := NewPool(4)
	defer p.Close()

	var inner *TaskError
	got := p.Invoke(func(w *Worker) any {
		child := w.Fork(func(w *Worker) any { panic("deep") })
		defer func() {
			te, ok := recover().(*TaskError)
			if ok {
				inner = te
			}
			// Swallow: the outer task completes normally after observing it.
		}()
		w.Join(child)
		return nil
	})
	_ = got
	if inner == nil || inner.Value != "deep" {
		t.Fatalf("inner join recovered %+v, want TaskError(deep)", inner)
	}
}

func TestPanickingPartitionNestedForNoDeadlock(t *testing.T) {
	// Regression for the fault-domain contract on the shared pool: a
	// partition task that panics while sibling partitions run nested Fors
	// (the wide-RDD shuffle shape) must neither wedge the outer barrier nor
	// poison the pool for later jobs. Runs repeatedly to shake worker/
	// caller interleavings; `make stress` picks this up via the Panic
	// pattern.
	for round := 0; round < 20; round++ {
		var nestedDone atomic.Int64
		err := Shared().ForE(8, 1, func(lo, hi int) {
			if lo == 3 {
				panic("partition down")
			}
			ForE(256, 0, func(lo, hi int) { // nested parallel-for, caller-runs
				for i := lo; i < hi; i++ {
					nestedDone.Add(1)
				}
			})
		})
		var te *TaskError
		if !errors.As(err, &te) || te.Value != "partition down" {
			t.Fatalf("round %d: err = %v, want TaskError(partition down)", round, err)
		}
	}
	// The shared pool must still run clean jobs at full coverage.
	var sum atomic.Int64
	if err := ForE(1000, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	}); err != nil {
		t.Fatalf("clean ForE after fault rounds: %v", err)
	}
	if sum.Load() != 499500 {
		t.Errorf("post-fault coverage sum = %d, want 499500", sum.Load())
	}
}

func TestForEPanicNoGoroutineLeak(t *testing.T) {
	// Helpers are pool tasks, not goroutines, so panicking jobs must leave
	// the goroutine count flat; a stuck barrier would strand the caller.
	Shared().For(16, 1, func(lo, hi int) {}) // warm the shared pool up front
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		_ = ForE(1024, 1, func(lo, hi int) {
			if lo%7 == 0 {
				panic("leak probe")
			}
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}
