// Package forkjoin implements a fork–join task pool with per-worker
// work-stealing deques, in the style of the Java Fork/Join framework (Lea,
// 2000) used by the fj-kmeans benchmark (Table 1: "task-parallel,
// concurrent data structures"). Workers push forked tasks onto their own
// lock-free Chase–Lev deque (LIFO for locality) and steal from the top of
// other workers' deques (FIFO) with a single CAS, and joining workers help
// execute pending tasks instead of blocking. Each worker holds a
// shard-pinned metrics.Local handle, so the scheduler's own accounting
// never contends across workers and never executes inside a critical
// section.
package forkjoin

import (
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"renaissance/internal/metrics"
)

// A Fn is the body of a fork-join task. It receives the worker executing it
// so that it can fork and join subtasks.
type Fn func(w *Worker) any

// Task is a forked computation whose result can be joined.
type Task struct {
	fn     Fn
	done   atomic.Bool
	result any
	// err holds the *TaskError of a panicking body, written before done is
	// published. Join re-panics it (fork/join exception propagation); Err
	// exposes it to callers that prefer inspecting.
	err    *TaskError
	doneCh chan struct{}
	// quiet suppresses completion metric bumps: For helper tasks are
	// never joined and may outlive the For that submitted them, so their
	// completion must not land counts in a later measurement window.
	quiet bool
}

func newTask(fn Fn) *Task {
	return &Task{fn: fn, doneCh: make(chan struct{})}
}

func (t *Task) complete(v any, loc metrics.Local) {
	t.result = v
	if !t.quiet {
		loc.IncAtomic()
	}
	t.done.Store(true)
	close(t.doneCh)
	if !t.quiet {
		loc.IncNotify()
	}
}

// IsDone reports whether the task has completed.
func (t *Task) IsDone() bool {
	metrics.IncAtomic()
	return t.done.Load()
}

// Result returns the task result; it must only be called after the task is
// known to be done.
func (t *Task) Result() any { return t.result }

// Err returns the task's failure (a *TaskError wrapping a recovered body
// panic), or nil. It must only be called after the task is known to be
// done.
func (t *Task) Err() error {
	if t.err == nil {
		return nil
	}
	return t.err
}

// Pool is a fork-join pool with a fixed number of workers.
type Pool struct {
	workers []*Worker
	submit  chan *Task
	wake    chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool
	// Steals counts successful steals, exposed for the ablation bench that
	// compares work-stealing against a single shared queue.
	Steals atomic.Int64
}

// Worker is one pool worker; tasks receive their executing worker to fork
// and join subtasks.
type Worker struct {
	pool  *Pool
	index int
	dq    Deque[Task]
	rng   *rand.Rand
	local metrics.Local
}

// NewPool creates a pool with n workers (0 means GOMAXPROCS).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		submit: make(chan *Task, 4096),
		wake:   make(chan struct{}, n),
		done:   make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		w := &Worker{
			pool:  p,
			index: i,
			rng:   rand.New(rand.NewSource(int64(i)*7919 + 1)),
			local: metrics.AcquireAt(i),
		}
		p.workers = append(p.workers, w)
	}
	for _, w := range p.workers {
		p.wg.Add(1)
		go w.run()
	}
	return p
}

// Parallelism returns the number of workers.
func (p *Pool) Parallelism() int { return len(p.workers) }

// Close shuts the pool down. Outstanding tasks are not waited for; callers
// should join their tasks first.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.done)
	p.wg.Wait()
}

func (p *Pool) wakeOne() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Submit schedules a top-level task from outside the pool.
func (p *Pool) Submit(fn Fn) *Task {
	metrics.IncObject()
	t := newTask(fn)
	select {
	case p.submit <- t:
	case <-p.done:
		return t // pool closed; task never runs (IsDone stays false)
	}
	p.wakeOne()
	return t
}

// Invoke submits fn and blocks until it completes, returning its result. A
// panicking fn is re-panicked here as a *TaskError (the join point).
func (p *Pool) Invoke(fn Fn) any {
	t := p.Submit(fn)
	metrics.IncPark()
	<-t.doneCh
	if t.err != nil {
		panic(t.err)
	}
	return t.result
}

func (w *Worker) run() {
	defer w.pool.wg.Done()
	for {
		if t := w.findTask(); t != nil {
			w.exec(t)
			continue
		}
		select {
		case t := <-w.pool.submit:
			w.exec(t)
		case <-w.pool.wake:
		case <-w.pool.done:
			return
		}
	}
}

// exec runs one task under a recover: a panicking body is converted to a
// *TaskError on the task and completes it, so a misbehaving task can never
// take down a pool worker or leave a joiner parked forever.
func (w *Worker) exec(t *Task) {
	defer func() {
		if p := recover(); p != nil {
			if te, ok := p.(*TaskError); ok {
				t.err = te // a nested join's re-panic keeps its identity
			} else {
				t.err = &TaskError{Index: -1, Value: p, Stack: debug.Stack()}
			}
			t.complete(nil, w.local)
		}
	}()
	v := t.fn(w)
	t.complete(v, w.local)
}

// findTask looks for work: own deque first, then the submission queue, then
// stealing from a random victim (scanning all on failure). Acquisitions
// are counted on success for non-quiet tasks only: failed scan attempts
// (and pickups of quiet For helpers) depend on wakeup timing, and
// counting them would make per-run metric totals scheduling-dependent.
func (w *Worker) findTask() *Task {
	if t := w.dq.Pop(); t != nil {
		if !t.quiet {
			w.local.IncAtomic()
		}
		return t
	}
	select {
	case t := <-w.pool.submit:
		if !t.quiet {
			w.local.IncAtomic()
		}
		return t
	default:
	}
	n := len(w.pool.workers)
	start := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		victim := w.pool.workers[(start+i)%n]
		if victim == w {
			continue
		}
		if t := victim.dq.Steal(); t != nil {
			w.pool.Steals.Add(1)
			if !t.quiet {
				w.local.IncAtomic()
			}
			return t
		}
	}
	return nil
}

// Fork schedules fn as a subtask on the worker's own deque.
func (w *Worker) Fork(fn Fn) *Task {
	w.local.IncObject()
	t := newTask(fn)
	w.local.IncAtomic()
	w.dq.Push(t)
	w.pool.wakeOne()
	return t
}

// Join waits for the task to finish, helping execute pending tasks while
// it waits (the fork-join "helping" discipline that avoids blocking worker
// threads). A task whose body panicked re-panics its *TaskError here, at
// the join point — the fork/join exception-propagation contract. Use
// Task.Err after IsDone to inspect without panicking.
func (w *Worker) Join(t *Task) any {
	for {
		w.local.IncAtomic()
		if t.done.Load() {
			if t.err != nil {
				panic(t.err)
			}
			return t.result
		}
		if other := w.findTask(); other != nil {
			w.exec(other)
		} else {
			runtime.Gosched()
		}
	}
}

// Pool returns the worker's pool.
func (w *Worker) Pool() *Pool { return w.pool }

// Index returns the worker index in [0, Parallelism).
func (w *Worker) Index() int { return w.index }

// InvokeAll forks all functions and joins them in order, returning their
// results — the common "divide into K parts" idiom.
func (w *Worker) InvokeAll(fns ...Fn) []any {
	tasks := make([]*Task, len(fns))
	for i, fn := range fns {
		tasks[i] = w.Fork(fn)
	}
	out := make([]any, len(fns))
	for i, t := range tasks {
		out[i] = w.Join(t)
	}
	return out
}
