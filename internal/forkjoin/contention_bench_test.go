package forkjoin

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"renaissance/internal/metrics"
)

// mutexDeque is the pre-Chase–Lev deque — a mutex around a slice, whose
// steal path shifted the slice head. Kept here (test-only) as the
// contention baseline: run
//
//	go test -run '^$' -bench 'Deque' -cpu 1,2,4,8 ./internal/forkjoin
//
// to compare owner throughput under steal pressure.
type mutexDeque struct {
	mu    sync.Mutex
	tasks []*Task
}

func (d *mutexDeque) push(t *Task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *mutexDeque) pop() *Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks)
	if n == 0 {
		return nil
	}
	t := d.tasks[n-1]
	d.tasks = d.tasks[:n-1]
	return t
}

func (d *mutexDeque) steal() *Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return nil
	}
	t := d.tasks[0]
	d.tasks = d.tasks[1:]
	return t
}

func (d *mutexDeque) size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.tasks))
}

// chaseLev adapts the generic Deque to the bench interface.
type chaseLev struct{ d Deque[Task] }

func (c *chaseLev) push(t *Task) { c.d.Push(t) }
func (c *chaseLev) pop() *Task   { return c.d.Pop() }
func (c *chaseLev) steal() *Task { return c.d.Steal() }
func (c *chaseLev) size() int64  { return c.d.Size() }

type benchDeque interface {
	push(*Task)
	pop() *Task
	steal() *Task
	size() int64
}

// benchOwnerUnderSteal measures the owner's push/pop throughput while
// GOMAXPROCS-1 thieves hammer the steal side — the fork–join hot path
// during work-stealing storms.
func benchOwnerUnderSteal(b *testing.B, d benchDeque) {
	thieves := runtime.GOMAXPROCS(0) - 1
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					d.steal()
				}
			}
		}()
	}
	task := newTask(nil)
	b.ResetTimer()
	// Fork–join workers push bursts of subtasks and drain them; one
	// benchmark op is one push + one pop, amortized over a burst.
	const burst = 64
	for i := 0; i < b.N; {
		k := burst
		if b.N-i < k {
			k = b.N - i
		}
		for j := 0; j < k; j++ {
			d.push(task)
		}
		for j := 0; j < k; j++ {
			d.pop() // nil if a thief won the race; the op still completed
		}
		i += k
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

func BenchmarkDequeMutexOwnerUnderSteal(b *testing.B) {
	benchOwnerUnderSteal(b, &mutexDeque{})
}

func BenchmarkDequeChaseLevOwnerUnderSteal(b *testing.B) {
	benchOwnerUnderSteal(b, &chaseLev{})
}

// benchStealThroughput measures aggregate steal throughput: one producer
// keeps the deque stocked while every other P steals.
func benchStealThroughput(b *testing.B, d benchDeque) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // owner: keep the deque stocked but bounded
		defer wg.Done()
		task := newTask(nil)
		for {
			select {
			case <-stop:
				return
			default:
				if d.size() < 1024 {
					d.push(task)
				} else {
					runtime.Gosched()
				}
			}
		}
	}()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			d.steal()
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}

func BenchmarkDequeMutexStealThroughput(b *testing.B) {
	benchStealThroughput(b, &mutexDeque{})
}

func BenchmarkDequeChaseLevStealThroughput(b *testing.B) {
	benchStealThroughput(b, &chaseLev{})
}

// The "as wired" pair compares the scheduler hot path as each version of
// the system actually ran it: the seed pushed/popped under a mutex and
// bumped the flat Default recorder's synch counter INSIDE the critical
// section; the current code pushes/pops lock-free and bumps a shard-pinned
// Local outside any critical section.
type seedWiredDeque struct {
	mu    sync.Mutex
	tasks []*Task
	// flat models the seed's Recorder: adjacent atomic slots in one array.
	flat [11]atomic.Int64
}

func (d *seedWiredDeque) push(t *Task) {
	d.mu.Lock()
	d.flat[0].Add(1) // seed behaviour: bump synch while holding the lock
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *seedWiredDeque) pop() *Task {
	d.mu.Lock()
	d.flat[0].Add(1)
	defer d.mu.Unlock()
	n := len(d.tasks)
	if n == 0 {
		return nil
	}
	t := d.tasks[n-1]
	d.tasks = d.tasks[:n-1]
	return t
}

func (d *seedWiredDeque) steal() *Task {
	d.mu.Lock()
	d.flat[0].Add(1)
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return nil
	}
	t := d.tasks[0]
	d.tasks = d.tasks[1:]
	return t
}

func (d *seedWiredDeque) size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.tasks))
}

// wiredChaseLev pairs the lock-free deque with the accounting the worker
// loop performs around it: the owner bumps its shard-pinned Local, thieves
// bump through the hashed path (each real thief worker has its own Local;
// the hash spreads the bench's anonymous thieves across shards the same
// way).
type wiredChaseLev struct {
	d   Deque[Task]
	loc metrics.Local
}

func (w *wiredChaseLev) push(t *Task) { w.loc.IncAtomic(); w.d.Push(t) }
func (w *wiredChaseLev) pop() *Task   { w.loc.IncAtomic(); return w.d.Pop() }
func (w *wiredChaseLev) steal() *Task { metrics.IncAtomic(); return w.d.Steal() }
func (w *wiredChaseLev) size() int64  { return w.d.Size() }

func BenchmarkDequeSeedWiredOwnerUnderSteal(b *testing.B) {
	benchOwnerUnderSteal(b, &seedWiredDeque{})
}

func BenchmarkDequeShardedWiredOwnerUnderSteal(b *testing.B) {
	benchOwnerUnderSteal(b, &wiredChaseLev{loc: metrics.Acquire()})
}

// End-to-end pool benchmark: recursive fork/join fib, the classic
// work-stealing stress shape.
func BenchmarkPoolFib(b *testing.B) {
	p := NewPool(runtime.GOMAXPROCS(0))
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.Invoke(fibTask(15)).(int); got != 610 {
			b.Fatalf("fib(15) = %d", got)
		}
	}
}
