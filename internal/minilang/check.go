package minilang

import "fmt"

// TypeError is a semantic error.
type TypeError struct {
	Line int
	Msg  string
}

func (e *TypeError) Error() string {
	return fmt.Sprintf("minilang:%d: %s", e.Line, e.Msg)
}

func typeErr(line int, format string, args ...any) error {
	return &TypeError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// funcSig is a function's checked signature.
type funcSig struct {
	params []Type
	ret    Type
}

// Check typechecks the program in place, annotating expression types.
func Check(prog *ProgramAST) error {
	sigs := map[string]funcSig{}
	for _, fn := range prog.Funcs {
		if _, dup := sigs[fn.Name]; dup {
			return typeErr(fn.Line, "function %q redeclared", fn.Name)
		}
		sig := funcSig{ret: fn.Ret}
		for _, p := range fn.Params {
			sig.params = append(sig.params, p.Type)
		}
		sigs[fn.Name] = sig
	}

	for _, fn := range prog.Funcs {
		c := &checker{sigs: sigs, fn: fn, vars: map[string]Type{}}
		for _, p := range fn.Params {
			if _, dup := c.vars[p.Name]; dup {
				return typeErr(fn.Line, "parameter %q redeclared", p.Name)
			}
			c.vars[p.Name] = p.Type
		}
		if err := c.block(fn.Body); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	sigs map[string]funcSig
	fn   *FuncDecl
	vars map[string]Type
}

func (c *checker) block(b *Block) error {
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch s := s.(type) {
	case *VarDecl:
		t, err := c.expr(s.Init)
		if err != nil {
			return err
		}
		if t == TypeVoid {
			return typeErr(s.Line, "cannot initialize %q with a void expression", s.Name)
		}
		if _, dup := c.vars[s.Name]; dup {
			return typeErr(s.Line, "variable %q redeclared", s.Name)
		}
		c.vars[s.Name] = t
		return nil
	case *Assign:
		vt, ok := c.vars[s.Name]
		if !ok {
			return typeErr(s.Line, "undefined variable %q", s.Name)
		}
		t, err := c.expr(s.Value)
		if err != nil {
			return err
		}
		if t != vt {
			return typeErr(s.Line, "cannot assign %s to %s variable %q", t, vt, s.Name)
		}
		return nil
	case *If:
		t, err := c.expr(s.Cond)
		if err != nil {
			return err
		}
		if t != TypeBool {
			return typeErr(0, "if condition must be bool, got %s", t)
		}
		if err := c.block(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.block(s.Else)
		}
		return nil
	case *While:
		t, err := c.expr(s.Cond)
		if err != nil {
			return err
		}
		if t != TypeBool {
			return typeErr(0, "while condition must be bool, got %s", t)
		}
		return c.block(s.Body)
	case *Return:
		if s.Value == nil {
			if c.fn.Ret != TypeVoid {
				return typeErr(s.Line, "function %q must return %s", c.fn.Name, c.fn.Ret)
			}
			return nil
		}
		t, err := c.expr(s.Value)
		if err != nil {
			return err
		}
		if t != c.fn.Ret {
			return typeErr(s.Line, "function %q returns %s, got %s", c.fn.Name, c.fn.Ret, t)
		}
		return nil
	case *ExprStmt:
		_, err := c.expr(s.E)
		return err
	case *Block:
		return c.block(s)
	default:
		return typeErr(0, "unknown statement %T", s)
	}
}

func (c *checker) expr(e Expr) (Type, error) {
	switch e := e.(type) {
	case *IntLit:
		e.T = TypeInt
	case *FloatLit:
		e.T = TypeFloat
	case *BoolLit:
		e.T = TypeBool
	case *VarRef:
		t, ok := c.vars[e.Name]
		if !ok {
			return TypeInvalid, typeErr(e.Line, "undefined variable %q", e.Name)
		}
		e.T = t
	case *Unary:
		st, err := c.expr(e.Sub)
		if err != nil {
			return TypeInvalid, err
		}
		switch e.Op {
		case "-":
			if st != TypeInt && st != TypeFloat {
				return TypeInvalid, typeErr(e.Line, "cannot negate %s", st)
			}
			e.T = st
		case "!":
			if st != TypeBool {
				return TypeInvalid, typeErr(e.Line, "cannot logically negate %s", st)
			}
			e.T = TypeBool
		}
	case *Binary:
		lt, err := c.expr(e.Left)
		if err != nil {
			return TypeInvalid, err
		}
		rt, err := c.expr(e.Right)
		if err != nil {
			return TypeInvalid, err
		}
		switch e.Op {
		case "+", "-", "*", "/", "%":
			if lt != rt || (lt != TypeInt && lt != TypeFloat) {
				return TypeInvalid, typeErr(e.Line, "invalid operands %s %s %s", lt, e.Op, rt)
			}
			if e.Op == "%" && lt != TypeInt {
				return TypeInvalid, typeErr(e.Line, "%% requires int operands")
			}
			e.T = lt
		case "<", "<=", ">", ">=":
			if lt != rt || (lt != TypeInt && lt != TypeFloat) {
				return TypeInvalid, typeErr(e.Line, "invalid comparison %s %s %s", lt, e.Op, rt)
			}
			e.T = TypeBool
		case "==", "!=":
			if lt != rt {
				return TypeInvalid, typeErr(e.Line, "cannot compare %s with %s", lt, rt)
			}
			e.T = TypeBool
		case "&&", "||":
			if lt != TypeBool || rt != TypeBool {
				return TypeInvalid, typeErr(e.Line, "%s requires bool operands", e.Op)
			}
			e.T = TypeBool
		default:
			return TypeInvalid, typeErr(e.Line, "unknown operator %q", e.Op)
		}
	case *Call:
		sig, ok := c.sigs[e.Name]
		if !ok {
			return TypeInvalid, typeErr(e.Line, "undefined function %q", e.Name)
		}
		if len(e.Args) != len(sig.params) {
			return TypeInvalid, typeErr(e.Line, "%q expects %d arguments, got %d",
				e.Name, len(sig.params), len(e.Args))
		}
		for i, a := range e.Args {
			at, err := c.expr(a)
			if err != nil {
				return TypeInvalid, err
			}
			if at != sig.params[i] {
				return TypeInvalid, typeErr(e.Line, "argument %d of %q: expected %s, got %s",
					i+1, e.Name, sig.params[i], at)
			}
		}
		e.T = sig.ret
	default:
		return TypeInvalid, typeErr(0, "unknown expression %T", e)
	}
	return e.TypeOf(), nil
}
