package minilang

import "fmt"

// TypeError is a semantic error.
type TypeError struct {
	Line int
	Msg  string
}

func (e *TypeError) Error() string {
	return fmt.Sprintf("minilang:%d: %s", e.Line, e.Msg)
}

func typeErr(line int, format string, args ...any) error {
	return &TypeError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// funcSig is a function's checked signature.
type funcSig struct {
	params []Type
	ret    Type
}

// Builtin function names; user functions cannot shadow them.
var builtins = map[string]bool{
	"newarray": true, "len": true,
	"smap": true, "sfilter": true, "sreduce": true,
}

// Check typechecks the program in place, annotating expression types.
func Check(prog *ProgramAST) error {
	sigs := map[string]funcSig{}
	for _, fn := range prog.Funcs {
		if _, dup := sigs[fn.Name]; dup {
			return typeErr(fn.Line, "function %q redeclared", fn.Name)
		}
		if builtins[fn.Name] {
			return typeErr(fn.Line, "function name %q is reserved", fn.Name)
		}
		sig := funcSig{ret: fn.Ret}
		for _, p := range fn.Params {
			sig.params = append(sig.params, p.Type)
		}
		sigs[fn.Name] = sig
	}

	for _, fn := range prog.Funcs {
		c := &checker{sigs: sigs, fn: fn, vars: map[string]Type{}}
		for _, p := range fn.Params {
			if _, dup := c.vars[p.Name]; dup {
				return typeErr(fn.Line, "parameter %q redeclared", p.Name)
			}
			c.vars[p.Name] = p.Type
		}
		if err := c.block(fn.Body); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	sigs map[string]funcSig
	fn   *FuncDecl
	vars map[string]Type
}

func (c *checker) block(b *Block) error {
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch s := s.(type) {
	case *VarDecl:
		t, err := c.expr(s.Init)
		if err != nil {
			return err
		}
		if t == TypeVoid || t == TypeFunc {
			return typeErr(s.Line, "cannot initialize %q with a %s expression", s.Name, t)
		}
		if _, dup := c.vars[s.Name]; dup {
			return typeErr(s.Line, "variable %q redeclared", s.Name)
		}
		c.vars[s.Name] = t
		return nil
	case *Assign:
		vt, ok := c.vars[s.Name]
		if !ok {
			return typeErr(s.Line, "undefined variable %q", s.Name)
		}
		t, err := c.expr(s.Value)
		if err != nil {
			return err
		}
		if t != vt {
			return typeErr(s.Line, "cannot assign %s to %s variable %q", t, vt, s.Name)
		}
		return nil
	case *If:
		t, err := c.expr(s.Cond)
		if err != nil {
			return err
		}
		if t != TypeBool {
			return typeErr(0, "if condition must be bool, got %s", t)
		}
		if err := c.block(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.block(s.Else)
		}
		return nil
	case *While:
		t, err := c.expr(s.Cond)
		if err != nil {
			return err
		}
		if t != TypeBool {
			return typeErr(0, "while condition must be bool, got %s", t)
		}
		return c.block(s.Body)
	case *For:
		if err := c.stmt(s.Init); err != nil {
			return err
		}
		t, err := c.expr(s.Cond)
		if err != nil {
			return err
		}
		if t != TypeBool {
			return typeErr(s.Line, "for condition must be bool, got %s", t)
		}
		if err := c.block(s.Body); err != nil {
			return err
		}
		return c.stmt(s.Post)
	case *IndexAssign:
		vt, ok := c.vars[s.Name]
		if !ok {
			return typeErr(s.Line, "undefined variable %q", s.Name)
		}
		if vt != TypeArray {
			return typeErr(s.Line, "cannot index %s variable %q", vt, s.Name)
		}
		it, err := c.expr(s.Index)
		if err != nil {
			return err
		}
		if it != TypeInt {
			return typeErr(s.Line, "array index must be int, got %s", it)
		}
		et, err := c.expr(s.Value)
		if err != nil {
			return err
		}
		if et != TypeInt {
			return typeErr(s.Line, "array element must be int, got %s", et)
		}
		return nil
	case *Return:
		if s.Value == nil {
			if c.fn.Ret != TypeVoid {
				return typeErr(s.Line, "function %q must return %s", c.fn.Name, c.fn.Ret)
			}
			return nil
		}
		t, err := c.expr(s.Value)
		if err != nil {
			return err
		}
		if t != c.fn.Ret {
			return typeErr(s.Line, "function %q returns %s, got %s", c.fn.Name, c.fn.Ret, t)
		}
		return nil
	case *ExprStmt:
		_, err := c.expr(s.E)
		return err
	case *Block:
		return c.block(s)
	default:
		return typeErr(0, "unknown statement %T", s)
	}
}

func (c *checker) expr(e Expr) (Type, error) {
	switch e := e.(type) {
	case *IntLit:
		e.T = TypeInt
	case *FloatLit:
		e.T = TypeFloat
	case *BoolLit:
		e.T = TypeBool
	case *VarRef:
		t, ok := c.vars[e.Name]
		if !ok {
			return TypeInvalid, typeErr(e.Line, "undefined variable %q", e.Name)
		}
		e.T = t
	case *Unary:
		st, err := c.expr(e.Sub)
		if err != nil {
			return TypeInvalid, err
		}
		switch e.Op {
		case "-":
			if st != TypeInt && st != TypeFloat {
				return TypeInvalid, typeErr(e.Line, "cannot negate %s", st)
			}
			e.T = st
		case "!":
			if st != TypeBool {
				return TypeInvalid, typeErr(e.Line, "cannot logically negate %s", st)
			}
			e.T = TypeBool
		}
	case *Binary:
		lt, err := c.expr(e.Left)
		if err != nil {
			return TypeInvalid, err
		}
		rt, err := c.expr(e.Right)
		if err != nil {
			return TypeInvalid, err
		}
		switch e.Op {
		case "+", "-", "*", "/", "%":
			if lt != rt || (lt != TypeInt && lt != TypeFloat) {
				return TypeInvalid, typeErr(e.Line, "invalid operands %s %s %s", lt, e.Op, rt)
			}
			if e.Op == "%" && lt != TypeInt {
				return TypeInvalid, typeErr(e.Line, "%% requires int operands")
			}
			e.T = lt
		case "<", "<=", ">", ">=":
			if lt != rt || (lt != TypeInt && lt != TypeFloat) {
				return TypeInvalid, typeErr(e.Line, "invalid comparison %s %s %s", lt, e.Op, rt)
			}
			e.T = TypeBool
		case "==", "!=":
			if lt != rt {
				return TypeInvalid, typeErr(e.Line, "cannot compare %s with %s", lt, rt)
			}
			e.T = TypeBool
		case "&&", "||":
			if lt != TypeBool || rt != TypeBool {
				return TypeInvalid, typeErr(e.Line, "%s requires bool operands", e.Op)
			}
			e.T = TypeBool
		default:
			return TypeInvalid, typeErr(e.Line, "unknown operator %q", e.Op)
		}
	case *IndexExpr:
		at, err := c.expr(e.Arr)
		if err != nil {
			return TypeInvalid, err
		}
		if at != TypeArray {
			return TypeInvalid, typeErr(e.Line, "cannot index %s", at)
		}
		it, err := c.expr(e.Index)
		if err != nil {
			return TypeInvalid, err
		}
		if it != TypeInt {
			return TypeInvalid, typeErr(e.Line, "array index must be int, got %s", it)
		}
		e.T = TypeInt
	case *FuncRef:
		e.T = TypeFunc
	case *Call:
		if builtins[e.Name] {
			return c.builtinCall(e)
		}
		sig, ok := c.sigs[e.Name]
		if !ok {
			return TypeInvalid, typeErr(e.Line, "undefined function %q", e.Name)
		}
		if len(e.Args) != len(sig.params) {
			return TypeInvalid, typeErr(e.Line, "%q expects %d arguments, got %d",
				e.Name, len(sig.params), len(e.Args))
		}
		for i, a := range e.Args {
			at, err := c.expr(a)
			if err != nil {
				return TypeInvalid, err
			}
			if at != sig.params[i] {
				return TypeInvalid, typeErr(e.Line, "argument %d of %q: expected %s, got %s",
					i+1, e.Name, sig.params[i], at)
			}
		}
		e.T = sig.ret
	default:
		return TypeInvalid, typeErr(0, "unknown expression %T", e)
	}
	return e.TypeOf(), nil
}

// builtinCall checks newarray/len/smap/sfilter/sreduce. The stream
// builtins take a declared function by name as their callback; the VarRef
// argument is validated against the required callback signature and
// rewritten into a FuncRef so the code generator emits a method-handle
// push instead of a variable load.
func (c *checker) builtinCall(e *Call) (Type, error) {
	argTypes := func(want ...Type) error {
		if len(e.Args) != len(want) {
			return typeErr(e.Line, "%q expects %d arguments, got %d", e.Name, len(want), len(e.Args))
		}
		for i, a := range e.Args {
			if want[i] == TypeFunc {
				if err := c.funcArg(e, i); err != nil {
					return err
				}
				continue
			}
			at, err := c.expr(a)
			if err != nil {
				return err
			}
			if at != want[i] {
				return typeErr(e.Line, "argument %d of %q: expected %s, got %s", i+1, e.Name, want[i], at)
			}
		}
		return nil
	}
	switch e.Name {
	case "newarray":
		if err := argTypes(TypeInt); err != nil {
			return TypeInvalid, err
		}
		e.T = TypeArray
	case "len":
		if err := argTypes(TypeArray); err != nil {
			return TypeInvalid, err
		}
		e.T = TypeInt
	case "smap", "sfilter":
		if err := argTypes(TypeArray, TypeFunc); err != nil {
			return TypeInvalid, err
		}
		e.T = TypeArray
	case "sreduce":
		if err := argTypes(TypeArray, TypeInt, TypeFunc); err != nil {
			return TypeInvalid, err
		}
		e.T = TypeInt
	}
	return e.T, nil
}

// funcArg validates e.Args[i] as a stream-callback reference and rewrites
// it to a FuncRef.
func (c *checker) funcArg(e *Call, i int) error {
	ref, ok := e.Args[i].(*VarRef)
	if !ok {
		return typeErr(e.Line, "argument %d of %q must name a function", i+1, e.Name)
	}
	sig, ok := c.sigs[ref.Name]
	if !ok {
		return typeErr(ref.Line, "undefined function %q", ref.Name)
	}
	var want funcSig
	switch e.Name {
	case "smap":
		want = funcSig{params: []Type{TypeInt}, ret: TypeInt}
	case "sfilter":
		want = funcSig{params: []Type{TypeInt}, ret: TypeBool}
	case "sreduce":
		want = funcSig{params: []Type{TypeInt, TypeInt}, ret: TypeInt}
	}
	if len(sig.params) != len(want.params) || sig.ret != want.ret {
		return typeErr(ref.Line, "%q callback %q must have signature %s", e.Name, ref.Name, sigString(want))
	}
	for i, p := range sig.params {
		if p != want.params[i] {
			return typeErr(ref.Line, "%q callback %q must have signature %s", e.Name, ref.Name, sigString(want))
		}
	}
	fr := &FuncRef{Name: ref.Name, Line: ref.Line}
	fr.T = TypeFunc
	e.Args[i] = fr
	return nil
}

func sigString(s funcSig) string {
	out := "("
	for i, p := range s.params {
		if i > 0 {
			out += ", "
		}
		out += p.String()
	}
	return out + ") " + s.ret.String()
}
