package minilang

import (
	"testing"

	"renaissance/internal/rvm"
)

func TestArrayForLoop(t *testing.T) {
	src := `
func main() int {
	var a = newarray(10);
	for var i = 0; i < len(a); i = i + 1 {
		a[i] = i * i;
	}
	var s = 0;
	for var j = 0; j < len(a); j = j + 1 {
		s = s + a[j];
	}
	return s;
}`
	if v := runMain(t, src); v.AsInt() != 285 {
		t.Errorf("sum of squares = %v, want 285", v)
	}
}

func TestIndexExprNesting(t *testing.T) {
	src := `
func main() int {
	var a = newarray(5);
	a[0] = 3;
	a[3] = 42;
	return a[a[0]];
}`
	if v := runMain(t, src); v.AsInt() != 42 {
		t.Errorf("a[a[0]] = %v, want 42", v)
	}
}

func TestArrayParamAndReturn(t *testing.T) {
	src := `
func fill(a array, k int) array {
	for var i = 0; i < len(a); i = i + 1 { a[i] = i * k; }
	return a;
}
func main() int {
	var a = fill(newarray(6), 7);
	return a[5];
}`
	if v := runMain(t, src); v.AsInt() != 35 {
		t.Errorf("a[5] = %v, want 35", v)
	}
}

func TestStreamPipeline(t *testing.T) {
	src := `
func double(x int) int { return x * 2; }
func odd(x int) bool { return x % 2 == 1; }
func add(a int, b int) int { return a + b; }
func main() int {
	var a = newarray(8);
	for var i = 0; i < len(a); i = i + 1 { a[i] = i + 1; }
	return sreduce(sfilter(smap(a, double), odd), 100, add);
}`
	// double(1..8) = 2,4,...,16 — all even, filter(odd) keeps none → 100.
	if v := runMain(t, src); v.AsInt() != 100 {
		t.Errorf("reduce = %v, want 100", v)
	}

	src2 := `
func inc(x int) int { return x + 1; }
func big(x int) bool { return x > 3; }
func add(a int, b int) int { return a + b; }
func main() int {
	var a = newarray(6);
	for var i = 0; i < len(a); i = i + 1 { a[i] = i; }
	return sreduce(sfilter(smap(a, inc), big), 0, add);
}`
	// inc(0..5) = 1..6; keep >3 → 4+5+6 = 15.
	if v := runMain(t, src2); v.AsInt() != 15 {
		t.Errorf("reduce = %v, want 15", v)
	}
}

func TestArrayTypeErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"index-non-array", `func main() int { var x = 3; return x[0]; }`},
		{"bad-callback-sig", `
func f(x float) float { return x; }
func main() int { return sreduce(newarray(3), 0, f); }`},
		{"callback-not-func", `func main() int { var g = 1; return len(smap(newarray(2), g)); }`},
		{"reserved-name", `func len(x int) int { return x; } func main() int { return len(3); }`},
		{"array-element-float", `func main() int { var a = newarray(2); a[0] = 1.5; return 0; }`},
		{"non-int-index", `func main() int { var a = newarray(2); return a[true]; }`},
	}
	for _, tc := range cases {
		if _, err := Compile(tc.src); err == nil {
			t.Errorf("%s: compile succeeded, want type error", tc.name)
		}
	}
}

// TestCorpusTierDifferential runs every corpus unit on the baseline
// tier-0 interpreter and with forced quickening; results and all dynamic
// counters must agree (satellite of the tier-up change).
func TestCorpusTierDifferential(t *testing.T) {
	for i, src := range Corpus(48) {
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("unit %d: compile: %v", i, err)
		}
		vm0 := rvm.NewInterp(p)
		vm0.Tier = rvm.TierBaseline
		v0, e0 := vm0.Run()
		vm1 := rvm.NewInterp(p)
		vm1.Tier = rvm.TierQuick
		v1, e1 := vm1.Run()
		if (e0 == nil) != (e1 == nil) || (e0 != nil && e0.Error() != e1.Error()) {
			t.Fatalf("unit %d: traps diverged: tier0=%v tier1=%v", i, e0, e1)
		}
		if e0 == nil && !v0.Equal(v1) {
			t.Errorf("unit %d: results diverged: tier0=%v tier1=%v", i, v0, v1)
		}
		if vm0.Counters != vm1.Counters {
			t.Errorf("unit %d: counters diverged:\n tier0: %+v\n tier1: %+v", i, vm0.Counters, vm1.Counters)
		}
		// TierAuto (the default) must agree with both.
		vmA := rvm.NewInterp(p)
		vA, eA := vmA.Run()
		if (e0 == nil) != (eA == nil) {
			t.Fatalf("unit %d: auto trap diverged: %v vs %v", i, e0, eA)
		}
		if e0 == nil && !v0.Equal(vA) {
			t.Errorf("unit %d: auto result diverged: %v vs %v", i, v0, vA)
		}
	}
}
