// Package minilang implements a small statically typed expression language
// with a complete compiler pipeline — lexer, recursive-descent parser,
// type checker, and a code generator targeting RVM bytecode. It plays the
// role of the Dotty Scala compiler in the dotty benchmark (Table 1:
// "data-structures, synchronization" — compiling a source corpus is the
// workload), and it doubles as a human-writable frontend for the RVM used
// by the minijit example.
package minilang

import (
	"fmt"
	"unicode"
)

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokKeyword // func var if else while return true false int float
	TokOp      // operators and punctuation
)

// Token is one lexeme with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

var keywords = map[string]bool{
	"func": true, "var": true, "if": true, "else": true,
	"while": true, "for": true, "return": true, "true": true, "false": true,
	"int": true, "float": true, "bool": true, "array": true,
}

// SyntaxError is a lexing or parsing error with position information.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("minilang:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes the source.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)

	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}

	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start, l0, c0 := i, line, col
			for i < n && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			text := src[start:i]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{kind, text, l0, c0})
		case unicode.IsDigit(rune(c)):
			start, l0, c0 := i, line, col
			isFloat := false
			for i < n && (unicode.IsDigit(rune(src[i])) || src[i] == '.') {
				if src[i] == '.' {
					if isFloat {
						return nil, errAt(line, col, "malformed number")
					}
					isFloat = true
				}
				advance(1)
			}
			kind := TokInt
			if isFloat {
				kind = TokFloat
			}
			toks = append(toks, Token{kind, src[start:i], l0, c0})
		default:
			l0, c0 := line, col
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||":
				toks = append(toks, Token{TokOp, two, l0, c0})
				advance(2)
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '<', '>', '=', '!', '(', ')', '{', '}', '[', ']', ',', ';':
				toks = append(toks, Token{TokOp, string(c), l0, c0})
				advance(1)
			default:
				return nil, errAt(line, col, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, Token{TokEOF, "", line, col})
	return toks, nil
}
