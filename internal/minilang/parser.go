package minilang

import "strconv"

// Parse lexes and parses a compilation unit.
func Parse(src string) (*ProgramAST, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ProgramAST{}
	for !p.at(TokEOF, "") {
		fn, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, fn)
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = "identifier"
		}
		return t, errAt(t.Line, t.Col, "expected %q, found %q", want, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *parser) typeName() (Type, error) {
	t := p.cur()
	switch {
	case p.accept(TokKeyword, "int"):
		return TypeInt, nil
	case p.accept(TokKeyword, "float"):
		return TypeFloat, nil
	case p.accept(TokKeyword, "bool"):
		return TypeBool, nil
	case p.accept(TokKeyword, "array"):
		return TypeArray, nil
	}
	return TypeInvalid, errAt(t.Line, t.Col, "expected type, found %q", t.Text)
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	kw, err := p.expect(TokKeyword, "func")
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.Text, Ret: TypeVoid, Line: kw.Line}
	for !p.at(TokOp, ")") {
		if len(fn.Params) > 0 {
			if _, err := p.expect(TokOp, ","); err != nil {
				return nil, err
			}
		}
		pname, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		ptype, err := p.typeName()
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, Param{pname.Text, ptype})
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	if p.at(TokKeyword, "int") || p.at(TokKeyword, "float") || p.at(TokKeyword, "bool") || p.at(TokKeyword, "array") {
		fn.Ret, _ = p.typeName()
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*Block, error) {
	if _, err := p.expect(TokOp, "{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.at(TokOp, "}") {
		if p.at(TokEOF, "") {
			t := p.cur()
			return nil, errAt(t.Line, t.Col, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.pos++ // consume }
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.accept(TokKeyword, "var"):
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "="); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ";"); err != nil {
			return nil, err
		}
		return &VarDecl{Name: name.Text, Init: init, Line: name.Line}, nil

	case p.accept(TokKeyword, "if"):
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els *Block
		if p.accept(TokKeyword, "else") {
			els, err = p.block()
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els}, nil

	case p.accept(TokKeyword, "while"):
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body}, nil

	case p.accept(TokKeyword, "for"):
		init, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ";"); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ";"); err != nil {
			return nil, err
		}
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		postAssign, ok := post.(*Assign)
		if !ok {
			return nil, errAt(t.Line, t.Col, "for post-statement must be an assignment")
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &For{Init: init, Cond: cond, Post: postAssign, Body: body, Line: t.Line}, nil

	case p.accept(TokKeyword, "return"):
		r := &Return{Line: t.Line}
		if !p.at(TokOp, ";") {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.Value = v
		}
		if _, err := p.expect(TokOp, ";"); err != nil {
			return nil, err
		}
		return r, nil

	case t.Kind == TokIdent && p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "=":
		name := p.next()
		p.pos++ // =
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ";"); err != nil {
			return nil, err
		}
		return &Assign{Name: name.Text, Value: v, Line: name.Line}, nil

	case t.Kind == TokIdent && p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "[":
		// Could be `a[i] = v;` or an expression statement starting with an
		// index read; try the assignment shape first.
		save := p.pos
		name := p.next()
		p.pos++ // [
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "]"); err != nil {
			return nil, err
		}
		if !p.accept(TokOp, "=") {
			p.pos = save // expression statement: reparse from the start
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ";"); err != nil {
				return nil, err
			}
			return &ExprStmt{E: e}, nil
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ";"); err != nil {
			return nil, err
		}
		return &IndexAssign{Name: name.Text, Index: idx, Value: v, Line: name.Line}, nil

	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{E: e}, nil
	}
}

// simpleStmt parses the semicolon-free statements allowed in for-loop
// init and post positions: `var x = e` or `x = e`.
func (p *parser) simpleStmt() (Stmt, error) {
	t := p.cur()
	if p.accept(TokKeyword, "var") {
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "="); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &VarDecl{Name: name.Text, Init: init, Line: name.Line}, nil
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, errAt(t.Line, t.Col, "expected assignment, found %q", t.Text)
	}
	if _, err := p.expect(TokOp, "="); err != nil {
		return nil, err
	}
	v, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &Assign{Name: name.Text, Value: v, Line: name.Line}, nil
}

// Operator precedence climbing.
var precedence = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3, "<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokOp {
			return left, nil
		}
		prec, isOp := precedence[t.Text]
		if !isOp || prec < minPrec {
			return left, nil
		}
		p.pos++
		right, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: t.Text, Left: left, Right: right, Line: t.Line}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokOp && (t.Text == "-" || t.Text == "!") {
		p.pos++
		sub, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.Text, Sub: sub, Line: t.Line}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.pos++
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errAt(t.Line, t.Col, "bad integer %q", t.Text)
		}
		return &IntLit{Value: v}, nil
	case t.Kind == TokFloat:
		p.pos++
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errAt(t.Line, t.Col, "bad float %q", t.Text)
		}
		return &FloatLit{Value: v}, nil
	case p.accept(TokKeyword, "true"):
		return &BoolLit{Value: true}, nil
	case p.accept(TokKeyword, "false"):
		return &BoolLit{Value: false}, nil
	case p.accept(TokOp, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		p.pos++
		var e Expr
		if p.accept(TokOp, "(") {
			call := &Call{Name: t.Text, Line: t.Line}
			for !p.at(TokOp, ")") {
				if len(call.Args) > 0 {
					if _, err := p.expect(TokOp, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.pos++ // )
			e = call
		} else {
			e = &VarRef{Name: t.Text, Line: t.Line}
		}
		for p.accept(TokOp, "[") {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, "]"); err != nil {
				return nil, err
			}
			e = &IndexExpr{Arr: e, Index: idx, Line: t.Line}
		}
		return e, nil
	default:
		return nil, errAt(t.Line, t.Col, "unexpected token %q", t.Text)
	}
}
