package minilang

// Type is a minilang type.
type Type int

// The language's types. Bool values are represented as ints at runtime
// (matching the RVM's comparison results).
const (
	TypeInvalid Type = iota
	TypeInt
	TypeFloat
	TypeBool
	TypeVoid
	TypeArray // array of int
	TypeFunc  // reference to a declared function (stream callbacks only)
)

func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeBool:
		return "bool"
	case TypeVoid:
		return "void"
	case TypeArray:
		return "array"
	case TypeFunc:
		return "func"
	default:
		return "invalid"
	}
}

// Program is a parsed compilation unit.
type ProgramAST struct {
	Funcs []*FuncDecl
}

// FuncDecl is one function declaration.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    Type // TypeVoid when omitted
	Body   *Block
	Line   int
}

// Param is a typed parameter.
type Param struct {
	Name string
	Type Type
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Block is a statement list.
type Block struct {
	Stmts []Stmt
}

// VarDecl declares and initializes a local.
type VarDecl struct {
	Name string
	Init Expr
	Line int
}

// Assign updates a local.
type Assign struct {
	Name  string
	Value Expr
	Line  int
}

// If is a conditional with optional else.
type If struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// While is a pre-tested loop.
type While struct {
	Cond Expr
	Body *Block
}

// For is a three-part counted loop: `for init; cond; post { body }`.
// The code generator lowers it into the RVM's canonical counted-loop
// shape so the tier-1 quickener can hoist null and bounds checks for
// loops that iterate an array by `len`.
type For struct {
	Init Stmt    // *VarDecl or *Assign
	Cond Expr
	Post *Assign
	Body *Block
	Line int
}

// IndexAssign stores into an array element: `a[i] = v;`.
type IndexAssign struct {
	Name  string
	Index Expr
	Value Expr
	Line  int
}

// Return exits the function.
type Return struct {
	Value Expr // nil for void
	Line  int
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	E Expr
}

func (*Block) stmt()       {}
func (*VarDecl) stmt()     {}
func (*Assign) stmt()      {}
func (*If) stmt()          {}
func (*While) stmt()       {}
func (*For) stmt()         {}
func (*IndexAssign) stmt() {}
func (*Return) stmt()      {}
func (*ExprStmt) stmt()    {}

// Expr is an expression node. Typechecking records each node's type.
type Expr interface {
	expr()
	TypeOf() Type
}

type typed struct{ T Type }

func (t *typed) TypeOf() Type { return t.T }

// IntLit is an integer literal.
type IntLit struct {
	typed
	Value int64
}

// FloatLit is a float literal.
type FloatLit struct {
	typed
	Value float64
}

// BoolLit is true/false.
type BoolLit struct {
	typed
	Value bool
}

// VarRef reads a local or parameter.
type VarRef struct {
	typed
	Name string
	Line int
}

// Binary is a binary operation ("+", "-", "*", "/", "%", comparisons,
// "&&", "||").
type Binary struct {
	typed
	Op          string
	Left, Right Expr
	Line        int
}

// Unary is "-" or "!".
type Unary struct {
	typed
	Op   string
	Sub  Expr
	Line int
}

// Call invokes a declared function or a builtin (newarray, len, smap,
// sfilter, sreduce).
type Call struct {
	typed
	Name string
	Args []Expr
	Line int
}

// IndexExpr reads an array element: `a[i]`.
type IndexExpr struct {
	typed
	Arr   Expr
	Index Expr
	Line  int
}

// FuncRef names a declared function used as a stream callback; the
// checker rewrites the VarRef argument of smap/sfilter/sreduce into this
// node after validating the callee's signature.
type FuncRef struct {
	typed
	Name string
	Line int
}

func (*IntLit) expr()    {}
func (*FloatLit) expr()  {}
func (*BoolLit) expr()   {}
func (*VarRef) expr()    {}
func (*Binary) expr()    {}
func (*Unary) expr()     {}
func (*Call) expr()      {}
func (*IndexExpr) expr() {}
func (*FuncRef) expr()   {}
