package minilang

// Type is a minilang type.
type Type int

// The language's types. Bool values are represented as ints at runtime
// (matching the RVM's comparison results).
const (
	TypeInvalid Type = iota
	TypeInt
	TypeFloat
	TypeBool
	TypeVoid
)

func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeBool:
		return "bool"
	case TypeVoid:
		return "void"
	default:
		return "invalid"
	}
}

// Program is a parsed compilation unit.
type ProgramAST struct {
	Funcs []*FuncDecl
}

// FuncDecl is one function declaration.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    Type // TypeVoid when omitted
	Body   *Block
	Line   int
}

// Param is a typed parameter.
type Param struct {
	Name string
	Type Type
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Block is a statement list.
type Block struct {
	Stmts []Stmt
}

// VarDecl declares and initializes a local.
type VarDecl struct {
	Name string
	Init Expr
	Line int
}

// Assign updates a local.
type Assign struct {
	Name  string
	Value Expr
	Line  int
}

// If is a conditional with optional else.
type If struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// While is a pre-tested loop.
type While struct {
	Cond Expr
	Body *Block
}

// Return exits the function.
type Return struct {
	Value Expr // nil for void
	Line  int
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	E Expr
}

func (*Block) stmt()    {}
func (*VarDecl) stmt()  {}
func (*Assign) stmt()   {}
func (*If) stmt()       {}
func (*While) stmt()    {}
func (*Return) stmt()   {}
func (*ExprStmt) stmt() {}

// Expr is an expression node. Typechecking records each node's type.
type Expr interface {
	expr()
	TypeOf() Type
}

type typed struct{ T Type }

func (t *typed) TypeOf() Type { return t.T }

// IntLit is an integer literal.
type IntLit struct {
	typed
	Value int64
}

// FloatLit is a float literal.
type FloatLit struct {
	typed
	Value float64
}

// BoolLit is true/false.
type BoolLit struct {
	typed
	Value bool
}

// VarRef reads a local or parameter.
type VarRef struct {
	typed
	Name string
	Line int
}

// Binary is a binary operation ("+", "-", "*", "/", "%", comparisons,
// "&&", "||").
type Binary struct {
	typed
	Op          string
	Left, Right Expr
	Line        int
}

// Unary is "-" or "!".
type Unary struct {
	typed
	Op   string
	Sub  Expr
	Line int
}

// Call invokes a declared function.
type Call struct {
	typed
	Name string
	Args []Expr
	Line int
}

func (*IntLit) expr()   {}
func (*FloatLit) expr() {}
func (*BoolLit) expr()  {}
func (*VarRef) expr()   {}
func (*Binary) expr()   {}
func (*Unary) expr()    {}
func (*Call) expr()     {}
