package minilang

import (
	"strings"
	"testing"

	"renaissance/internal/rvm"
	"renaissance/internal/rvm/jit"
	"renaissance/internal/rvm/opt"
)

// runMain compiles src and executes ML.main on the bytecode interpreter.
func runMain(t *testing.T, src string) rvm.Value {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if p.Entry == nil {
		t.Fatal("no main function")
	}
	vm := rvm.NewInterp(p)
	v, err := vm.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func TestArithmeticAndPrecedence(t *testing.T) {
	v := runMain(t, `func main() int { return 2 + 3 * 4 - 10 / 2; }`)
	if v.AsInt() != 9 {
		t.Errorf("result = %v, want 9", v)
	}
}

func TestVariablesAndAssignment(t *testing.T) {
	v := runMain(t, `
func main() int {
	var x = 10;
	var y = x * 2;
	x = y + 1;
	return x;
}`)
	if v.AsInt() != 21 {
		t.Errorf("result = %v, want 21", v)
	}
}

func TestIfElse(t *testing.T) {
	src := `
func pick(a int) int {
	if a > 10 { return 1; } else { return 2; }
}
func main() int { return pick(20) * 10 + pick(5); }`
	if v := runMain(t, src); v.AsInt() != 12 {
		t.Errorf("result = %v, want 12", v)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
func main() int {
	var sum = 0;
	var i = 1;
	while i <= 100 {
		sum = sum + i;
		i = i + 1;
	}
	return sum;
}`
	if v := runMain(t, src); v.AsInt() != 5050 {
		t.Errorf("result = %v, want 5050", v)
	}
}

func TestRecursion(t *testing.T) {
	src := `
func fib(n int) int {
	if n < 2 { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() int { return fib(15); }`
	if v := runMain(t, src); v.AsInt() != 610 {
		t.Errorf("fib(15) = %v, want 610", v)
	}
}

func TestFloatArithmetic(t *testing.T) {
	src := `
func area(r float) float { return 3.14159 * r * r; }
func main() float { return area(2.0); }`
	v := runMain(t, src)
	if got := v.AsFloat(); got < 12.56 || got > 12.57 {
		t.Errorf("area = %v", got)
	}
}

func TestBooleansAndShortCircuit(t *testing.T) {
	src := `
func boom() bool { return true; }
func main() int {
	var a = false && boom();
	var b = true || boom();
	var c = !a && b;
	if c { return 1; }
	return 0;
}`
	if v := runMain(t, src); v.AsInt() != 1 {
		t.Errorf("result = %v, want 1", v)
	}
}

func TestModulo(t *testing.T) {
	if v := runMain(t, `func main() int { return 17 % 5; }`); v.AsInt() != 2 {
		t.Errorf("17 %% 5 = %v", v)
	}
}

func TestVoidFunction(t *testing.T) {
	src := `
func noop() { return; }
func main() int { noop(); return 7; }`
	if v := runMain(t, src); v.AsInt() != 7 {
		t.Errorf("result = %v", v)
	}
}

func TestCompiledThroughJIT(t *testing.T) {
	// The minilang output must survive the full optimizing pipeline.
	src := `
func sumsq(n int) int {
	var s = 0;
	var i = 0;
	while i < n {
		s = s + i * i;
		i = i + 1;
	}
	return s;
}
func main() int { return sumsq(50); }`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rvm.NewInterp(p).Run()
	if err != nil {
		t.Fatal(err)
	}
	c, err := jit.Compile(p, opt.OptPipeline())
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("jit result %v, interpreter %v", got, want)
	}
	if stats.Cycles <= 0 {
		t.Error("no cycles")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("func @"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := Lex("1.2.3"); err == nil {
		t.Error("malformed number accepted")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("func f()\n{ }")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("first token at %d:%d", toks[0].Line, toks[0].Col)
	}
	var brace *Token
	for i := range toks {
		if toks[i].Text == "{" {
			brace = &toks[i]
		}
	}
	if brace == nil || brace.Line != 2 {
		t.Errorf("brace position wrong: %+v", brace)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`func { }`,                          // missing name
		`func f( { }`,                       // bad params
		`func f() int { return 1 }`,         // missing semicolon
		`func f() int { if x { return 1; }`, // unterminated
		`func f() int { return (1; }`,       // unbalanced paren
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []string{
		`func f() int { return 1.5; }`,                     // wrong return type
		`func f() int { var x = 1; x = 2.0; return x; }`,   // assign mismatch
		`func f() int { return g(); }`,                     // undefined function
		`func f(a int) int { return f(1, 2); }`,            // arity
		`func f() int { return y; }`,                       // undefined var
		`func f() int { if 3 { return 1; } return 0; }`,    // non-bool cond
		`func f() int { while 1.0 { } return 0; }`,         // non-bool cond
		`func f() int { var x = 1; var x = 2; return x; }`, // redeclared
		`func f() int { return 1 + 2.0; }`,                 // mixed arith
		`func f() int { return 1.0 % 2.0; }`,               // float modulo
		`func f() int { return -true; }`,                   // negate bool
		`func f() int { return !3; }`,                      // not-int
		`func f() int { return true && 1; }`,               // non-bool and
		`func f() { } func f() { }`,                        // duplicate function
		`func f() { return 3; }`,                           // value from void
	}
	for _, src := range cases {
		ast, err := Parse(src)
		if err != nil {
			t.Errorf("parse error for %q: %v", src, err)
			continue
		}
		if err := Check(ast); err == nil {
			t.Errorf("typechecker accepted %q", src)
		}
	}
}

// TestCorpusCompilation is the dotty-benchmark shape: compile a corpus of
// generated source files and verify the outputs.
func TestCorpusCompilation(t *testing.T) {
	corpus := Corpus(12)
	if len(corpus) != 12 {
		t.Fatalf("corpus size = %d", len(corpus))
	}
	for i, src := range corpus {
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("unit %d: %v\n%s", i, err, src)
		}
		if p.Entry == nil {
			t.Fatalf("unit %d has no main", i)
		}
		if _, err := rvm.NewInterp(p).Run(); err != nil {
			t.Fatalf("unit %d run: %v", i, err)
		}
	}
	// Deterministic generation.
	again := Corpus(12)
	for i := range corpus {
		if corpus[i] != again[i] {
			t.Fatal("corpus not deterministic")
		}
	}
}

func TestCorpusIsNontrivial(t *testing.T) {
	for _, src := range Corpus(4) {
		if !strings.Contains(src, "while") || !strings.Contains(src, "func") {
			t.Errorf("corpus unit too trivial:\n%s", src)
		}
	}
}

// TestCorpusThroughOptimizer compiles every corpus unit through the full
// optimizing pipeline and checks the result against the bytecode
// interpreter — the dotty workload's output must survive every
// optimization.
func TestCorpusThroughOptimizer(t *testing.T) {
	for i, src := range Corpus(10) {
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("unit %d: %v", i, err)
		}
		want, err := rvm.NewInterp(p).Run()
		if err != nil {
			t.Fatalf("unit %d interp: %v", i, err)
		}
		for _, pipe := range []*opt.Pipeline{opt.BaselinePipeline(), opt.OptPipeline()} {
			c, err := jit.Compile(p, pipe)
			if err != nil {
				t.Fatalf("unit %d compile (%s): %v", i, pipe.Name, err)
			}
			got, _, err := c.Run()
			if err != nil {
				t.Fatalf("unit %d run (%s): %v", i, pipe.Name, err)
			}
			if !got.Equal(want) {
				t.Errorf("unit %d (%s): %v != %v", i, pipe.Name, got, want)
			}
		}
	}
}
