package minilang

import (
	"fmt"

	"renaissance/internal/rvm"
)

// ClassName is the RVM class that holds all compiled minilang functions.
const ClassName = "ML"

// Compile parses, typechecks, and code-generates the source into an RVM
// program. The entry method is the function named "main" when present.
func Compile(src string) (*rvm.Program, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(ast); err != nil {
		return nil, err
	}
	return Generate(ast)
}

// Generate lowers a checked AST to RVM bytecode.
func Generate(prog *ProgramAST) (*rvm.Program, error) {
	p := rvm.NewProgram()
	class := rvm.NewClass(ClassName, nil)
	streams := false
	for _, fn := range prog.Funcs {
		g := &codegen{asm: rvm.NewAsm(), slots: map[string]int{}}
		m, err := g.genFunc(fn)
		if err != nil {
			return nil, err
		}
		m.Static = true
		class.AddMethod(m)
		streams = streams || g.streams
		if fn.Name == "main" {
			p.Entry = m
		}
	}
	if streams {
		for _, m := range streamLib() {
			m.Static = true
			class.AddMethod(m)
		}
	}
	if err := p.AddClass(class); err != nil {
		return nil, err
	}
	return p, nil
}

type codegen struct {
	asm      *rvm.Asm
	slots    map[string]int
	nextSlot int
	labels   int
	streams  bool // unit uses smap/sfilter/sreduce
}

func (g *codegen) slot(name string) int {
	if s, ok := g.slots[name]; ok {
		return s
	}
	s := g.nextSlot
	g.nextSlot++
	g.slots[name] = s
	return s
}

func (g *codegen) fresh(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s_%d", prefix, g.labels)
}

func (g *codegen) genFunc(fn *FuncDecl) (*rvm.Method, error) {
	for _, p := range fn.Params {
		g.slot(p.Name)
	}
	if err := g.block(fn.Body); err != nil {
		return nil, err
	}
	// Implicit return for void functions (and a safety net for non-void
	// ones whose control flow provably returned already).
	if fn.Ret == TypeVoid {
		g.asm.Op(rvm.OpReturnVoid)
	} else {
		g.asm.ConstInt(0).Op(rvm.OpReturn)
	}
	m, err := g.asm.Build(fn.Name, len(fn.Params))
	if err != nil {
		return nil, err
	}
	// Ensure locals cover all named slots even if only stores touched them.
	if g.nextSlot > m.NLocals {
		m.NLocals = g.nextSlot
	}
	return m, nil
}

func (g *codegen) block(b *Block) error {
	for _, s := range b.Stmts {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) stmt(s Stmt) error {
	switch s := s.(type) {
	case *VarDecl:
		if err := g.expr(s.Init); err != nil {
			return err
		}
		g.asm.Store(g.slot(s.Name))
	case *Assign:
		if err := g.expr(s.Value); err != nil {
			return err
		}
		g.asm.Store(g.slot(s.Name))
	case *If:
		elseL := g.fresh("else")
		endL := g.fresh("endif")
		if err := g.expr(s.Cond); err != nil {
			return err
		}
		g.asm.Jump(rvm.OpJumpIfNot, elseL)
		if err := g.block(s.Then); err != nil {
			return err
		}
		g.asm.Jump(rvm.OpJump, endL)
		g.asm.Label(elseL)
		if s.Else != nil {
			if err := g.block(s.Else); err != nil {
				return err
			}
		}
		g.asm.Label(endL)
	case *While:
		headL := g.fresh("while")
		endL := g.fresh("endwhile")
		g.asm.Label(headL)
		if err := g.expr(s.Cond); err != nil {
			return err
		}
		g.asm.Jump(rvm.OpJumpIfNot, endL)
		if err := g.block(s.Body); err != nil {
			return err
		}
		g.asm.Jump(rvm.OpJump, headL)
		g.asm.Label(endL)
	case *For:
		// Lower to the canonical counted-loop shape: the init lands
		// directly before the header, the post-increment directly before
		// the backedge, so a `for i = <const>; i < len(a); i = i + <k>`
		// loop matches the tier-1 bounds-check-elimination region.
		if err := g.stmt(s.Init); err != nil {
			return err
		}
		headL := g.fresh("for")
		endL := g.fresh("endfor")
		g.asm.Label(headL)
		if err := g.expr(s.Cond); err != nil {
			return err
		}
		g.asm.Jump(rvm.OpJumpIfNot, endL)
		if err := g.block(s.Body); err != nil {
			return err
		}
		if err := g.stmt(s.Post); err != nil {
			return err
		}
		g.asm.Jump(rvm.OpJump, headL)
		g.asm.Label(endL)
		if idx, arr, ok := canonicalFor(s); ok {
			g.asm.MarkLoop(headL, endL, g.slot(idx), g.slot(arr), true)
		}
	case *IndexAssign:
		g.asm.Load(g.slot(s.Name))
		if err := g.expr(s.Index); err != nil {
			return err
		}
		if err := g.expr(s.Value); err != nil {
			return err
		}
		g.asm.Op(rvm.OpAStore)
	case *Return:
		if s.Value == nil {
			g.asm.Op(rvm.OpReturnVoid)
			return nil
		}
		if err := g.expr(s.Value); err != nil {
			return err
		}
		g.asm.Op(rvm.OpReturn)
	case *ExprStmt:
		if err := g.expr(s.E); err != nil {
			return err
		}
		// Every expression (including void calls, which push null in the
		// RVM's calling convention) leaves exactly one value.
		g.asm.Op(rvm.OpPop)
	case *Block:
		return g.block(s)
	default:
		return fmt.Errorf("minilang: unknown statement %T", s)
	}
	return nil
}

var binOps = map[string]rvm.Opcode{
	"+": rvm.OpAdd, "-": rvm.OpSub, "*": rvm.OpMul, "/": rvm.OpDiv, "%": rvm.OpRem,
	"<": rvm.OpCmpLT, "<=": rvm.OpCmpLE, ">": rvm.OpCmpGT, ">=": rvm.OpCmpGE,
	"==": rvm.OpCmpEQ, "!=": rvm.OpCmpNE,
}

func (g *codegen) expr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		g.asm.ConstInt(e.Value)
	case *FloatLit:
		g.asm.ConstFloat(e.Value)
	case *BoolLit:
		v := int64(0)
		if e.Value {
			v = 1
		}
		g.asm.ConstInt(v)
	case *VarRef:
		g.asm.Load(g.slot(e.Name))
	case *Unary:
		if err := g.expr(e.Sub); err != nil {
			return err
		}
		if e.Op == "-" {
			g.asm.Op(rvm.OpNeg)
		} else { // !x == (x == 0)
			g.asm.ConstInt(0).Op(rvm.OpCmpEQ)
		}
	case *Binary:
		switch e.Op {
		case "&&":
			// Short-circuit: if !left, result 0.
			falseL := g.fresh("and_false")
			endL := g.fresh("and_end")
			if err := g.expr(e.Left); err != nil {
				return err
			}
			g.asm.Jump(rvm.OpJumpIfNot, falseL)
			if err := g.expr(e.Right); err != nil {
				return err
			}
			g.asm.Jump(rvm.OpJump, endL)
			g.asm.Label(falseL)
			g.asm.ConstInt(0)
			g.asm.Label(endL)
		case "||":
			trueL := g.fresh("or_true")
			endL := g.fresh("or_end")
			if err := g.expr(e.Left); err != nil {
				return err
			}
			g.asm.Jump(rvm.OpJumpIf, trueL)
			if err := g.expr(e.Right); err != nil {
				return err
			}
			g.asm.Jump(rvm.OpJump, endL)
			g.asm.Label(trueL)
			g.asm.ConstInt(1)
			g.asm.Label(endL)
		default:
			if err := g.expr(e.Left); err != nil {
				return err
			}
			if err := g.expr(e.Right); err != nil {
				return err
			}
			op, ok := binOps[e.Op]
			if !ok {
				return fmt.Errorf("minilang: no opcode for %q", e.Op)
			}
			g.asm.Op(op)
		}
	case *Call:
		if done, err := g.builtinCall(e); done || err != nil {
			return err
		}
		for _, a := range e.Args {
			if err := g.expr(a); err != nil {
				return err
			}
		}
		g.asm.Invoke(rvm.OpInvokeStatic, ClassName+"."+e.Name, len(e.Args))
	case *IndexExpr:
		if err := g.expr(e.Arr); err != nil {
			return err
		}
		if err := g.expr(e.Index); err != nil {
			return err
		}
		g.asm.Op(rvm.OpALoad)
	case *FuncRef:
		// Push a method handle for the named function (JSR 292 bootstrap).
		g.asm.Sym(rvm.OpInvokeDynamic, ClassName+"."+e.Name)
	default:
		return fmt.Errorf("minilang: unknown expression %T", e)
	}
	return nil
}

// builtinCall emits newarray/len inline and lowers the stream builtins to
// calls into the synthesized $smap/$sfilter/$sreduce library methods.
func (g *codegen) builtinCall(e *Call) (bool, error) {
	switch e.Name {
	case "newarray":
		if err := g.expr(e.Args[0]); err != nil {
			return true, err
		}
		g.asm.Op(rvm.OpNewArray)
	case "len":
		if err := g.expr(e.Args[0]); err != nil {
			return true, err
		}
		g.asm.Op(rvm.OpArrayLen)
	case "smap", "sfilter", "sreduce":
		g.streams = true
		for _, a := range e.Args {
			if err := g.expr(a); err != nil {
				return true, err
			}
		}
		g.asm.Invoke(rvm.OpInvokeStatic, ClassName+".$"+e.Name, len(e.Args))
	default:
		return false, nil
	}
	return true, nil
}

// canonicalFor reports whether the loop is `for i = <const >= 0>; i < len(a);
// i = i + <const > 0>`, returning the induction and array variable names so
// the generator can attach LoopInfo metadata for the quickener.
func canonicalFor(s *For) (idx, arr string, ok bool) {
	var name string
	switch init := s.Init.(type) {
	case *VarDecl:
		lit, isLit := init.Init.(*IntLit)
		if !isLit || lit.Value < 0 {
			return "", "", false
		}
		name = init.Name
	case *Assign:
		lit, isLit := init.Value.(*IntLit)
		if !isLit || lit.Value < 0 {
			return "", "", false
		}
		name = init.Name
	default:
		return "", "", false
	}
	cond, isBin := s.Cond.(*Binary)
	if !isBin || cond.Op != "<" {
		return "", "", false
	}
	lv, isVar := cond.Left.(*VarRef)
	if !isVar || lv.Name != name {
		return "", "", false
	}
	lenCall, isCall := cond.Right.(*Call)
	if !isCall || lenCall.Name != "len" || len(lenCall.Args) != 1 {
		return "", "", false
	}
	av, isArrVar := lenCall.Args[0].(*VarRef)
	if !isArrVar {
		return "", "", false
	}
	if s.Post.Name != name {
		return "", "", false
	}
	inc, isInc := s.Post.Value.(*Binary)
	if !isInc || inc.Op != "+" {
		return "", "", false
	}
	pv, okVar := inc.Left.(*VarRef)
	step, okLit := inc.Right.(*IntLit)
	if !okVar || pv.Name != name || !okLit || step.Value <= 0 {
		return "", "", false
	}
	return name, av.Name, true
}

// streamLib synthesizes the stream-pipeline library: each method is the
// canonical counted array loop (with LoopInfo metadata) applying a method
// handle per element, so both the tier-1 quickener and the rvm/opt
// stream-fusion pass can recognize and optimize the shape.
func streamLib() []*rvm.Method {
	// $smap(arr, h): out[i] = h(arr[i])
	sm := rvm.NewAsm()
	sm.Load(0).Op(rvm.OpArrayLen).Op(rvm.OpNewArray).Store(2)
	sm.ConstInt(0).Store(3)
	sm.Label("head")
	sm.Load(3).Load(0).Op(rvm.OpArrayLen).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	sm.Load(2).Load(3)
	sm.Load(1).Load(0).Load(3).Op(rvm.OpALoad)
	sm.Invoke(rvm.OpInvokeHandle, "", 1)
	sm.Op(rvm.OpAStore)
	sm.Load(3).ConstInt(1).Op(rvm.OpAdd).Store(3)
	sm.Jump(rvm.OpJump, "head")
	sm.Label("exit")
	sm.Load(2).Op(rvm.OpReturn)
	sm.MarkLoop("head", "exit", 3, 0, true)

	// $sfilter(arr, h): two passes — count matches, then fill exact-size out.
	sf := rvm.NewAsm()
	sf.ConstInt(0).Store(2) // cnt
	sf.ConstInt(0).Store(3) // i
	sf.Label("head1")
	sf.Load(3).Load(0).Op(rvm.OpArrayLen).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "mid")
	sf.Load(1).Load(0).Load(3).Op(rvm.OpALoad).Invoke(rvm.OpInvokeHandle, "", 1)
	sf.Jump(rvm.OpJumpIfNot, "skip1")
	sf.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	sf.Label("skip1")
	sf.Load(3).ConstInt(1).Op(rvm.OpAdd).Store(3)
	sf.Jump(rvm.OpJump, "head1")
	sf.Label("mid")
	sf.Load(2).Op(rvm.OpNewArray).Store(4) // out
	sf.ConstInt(0).Store(5)                // j
	sf.ConstInt(0).Store(3)
	sf.Label("head2")
	sf.Load(3).Load(0).Op(rvm.OpArrayLen).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	sf.Load(0).Load(3).Op(rvm.OpALoad).Store(6) // tmp
	sf.Load(1).Load(6).Invoke(rvm.OpInvokeHandle, "", 1)
	sf.Jump(rvm.OpJumpIfNot, "skip2")
	sf.Load(4).Load(5).Load(6).Op(rvm.OpAStore)
	sf.Load(5).ConstInt(1).Op(rvm.OpAdd).Store(5)
	sf.Label("skip2")
	sf.Load(3).ConstInt(1).Op(rvm.OpAdd).Store(3)
	sf.Jump(rvm.OpJump, "head2")
	sf.Label("exit")
	sf.Load(4).Op(rvm.OpReturn)
	sf.MarkLoop("head1", "mid", 3, 0, true)
	sf.MarkLoop("head2", "exit", 3, 0, true)

	// $sreduce(arr, acc, h): acc = h(acc, arr[i])
	sr := rvm.NewAsm()
	sr.ConstInt(0).Store(3)
	sr.Label("head")
	sr.Load(3).Load(0).Op(rvm.OpArrayLen).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	sr.Load(2).Load(1).Load(0).Load(3).Op(rvm.OpALoad)
	sr.Invoke(rvm.OpInvokeHandle, "", 2)
	sr.Store(1)
	sr.Load(3).ConstInt(1).Op(rvm.OpAdd).Store(3)
	sr.Jump(rvm.OpJump, "head")
	sr.Label("exit")
	sr.Load(1).Op(rvm.OpReturn)
	sr.MarkLoop("head", "exit", 3, 0, true)

	return []*rvm.Method{
		sm.MustBuild("$smap", 2),
		sf.MustBuild("$sfilter", 2),
		sr.MustBuild("$sreduce", 3),
	}
}
