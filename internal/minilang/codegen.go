package minilang

import (
	"fmt"

	"renaissance/internal/rvm"
)

// ClassName is the RVM class that holds all compiled minilang functions.
const ClassName = "ML"

// Compile parses, typechecks, and code-generates the source into an RVM
// program. The entry method is the function named "main" when present.
func Compile(src string) (*rvm.Program, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(ast); err != nil {
		return nil, err
	}
	return Generate(ast)
}

// Generate lowers a checked AST to RVM bytecode.
func Generate(prog *ProgramAST) (*rvm.Program, error) {
	p := rvm.NewProgram()
	class := rvm.NewClass(ClassName, nil)
	for _, fn := range prog.Funcs {
		m, err := genFunc(fn)
		if err != nil {
			return nil, err
		}
		m.Static = true
		class.AddMethod(m)
		if fn.Name == "main" {
			p.Entry = m
		}
	}
	if err := p.AddClass(class); err != nil {
		return nil, err
	}
	return p, nil
}

type codegen struct {
	asm      *rvm.Asm
	slots    map[string]int
	nextSlot int
	labels   int
}

func (g *codegen) slot(name string) int {
	if s, ok := g.slots[name]; ok {
		return s
	}
	s := g.nextSlot
	g.nextSlot++
	g.slots[name] = s
	return s
}

func (g *codegen) fresh(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s_%d", prefix, g.labels)
}

func genFunc(fn *FuncDecl) (*rvm.Method, error) {
	g := &codegen{asm: rvm.NewAsm(), slots: map[string]int{}}
	for _, p := range fn.Params {
		g.slot(p.Name)
	}
	if err := g.block(fn.Body); err != nil {
		return nil, err
	}
	// Implicit return for void functions (and a safety net for non-void
	// ones whose control flow provably returned already).
	if fn.Ret == TypeVoid {
		g.asm.Op(rvm.OpReturnVoid)
	} else {
		g.asm.ConstInt(0).Op(rvm.OpReturn)
	}
	m, err := g.asm.Build(fn.Name, len(fn.Params))
	if err != nil {
		return nil, err
	}
	// Ensure locals cover all named slots even if only stores touched them.
	if g.nextSlot > m.NLocals {
		m.NLocals = g.nextSlot
	}
	return m, nil
}

func (g *codegen) block(b *Block) error {
	for _, s := range b.Stmts {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) stmt(s Stmt) error {
	switch s := s.(type) {
	case *VarDecl:
		if err := g.expr(s.Init); err != nil {
			return err
		}
		g.asm.Store(g.slot(s.Name))
	case *Assign:
		if err := g.expr(s.Value); err != nil {
			return err
		}
		g.asm.Store(g.slot(s.Name))
	case *If:
		elseL := g.fresh("else")
		endL := g.fresh("endif")
		if err := g.expr(s.Cond); err != nil {
			return err
		}
		g.asm.Jump(rvm.OpJumpIfNot, elseL)
		if err := g.block(s.Then); err != nil {
			return err
		}
		g.asm.Jump(rvm.OpJump, endL)
		g.asm.Label(elseL)
		if s.Else != nil {
			if err := g.block(s.Else); err != nil {
				return err
			}
		}
		g.asm.Label(endL)
	case *While:
		headL := g.fresh("while")
		endL := g.fresh("endwhile")
		g.asm.Label(headL)
		if err := g.expr(s.Cond); err != nil {
			return err
		}
		g.asm.Jump(rvm.OpJumpIfNot, endL)
		if err := g.block(s.Body); err != nil {
			return err
		}
		g.asm.Jump(rvm.OpJump, headL)
		g.asm.Label(endL)
	case *Return:
		if s.Value == nil {
			g.asm.Op(rvm.OpReturnVoid)
			return nil
		}
		if err := g.expr(s.Value); err != nil {
			return err
		}
		g.asm.Op(rvm.OpReturn)
	case *ExprStmt:
		if err := g.expr(s.E); err != nil {
			return err
		}
		// Every expression (including void calls, which push null in the
		// RVM's calling convention) leaves exactly one value.
		g.asm.Op(rvm.OpPop)
	case *Block:
		return g.block(s)
	default:
		return fmt.Errorf("minilang: unknown statement %T", s)
	}
	return nil
}

var binOps = map[string]rvm.Opcode{
	"+": rvm.OpAdd, "-": rvm.OpSub, "*": rvm.OpMul, "/": rvm.OpDiv, "%": rvm.OpRem,
	"<": rvm.OpCmpLT, "<=": rvm.OpCmpLE, ">": rvm.OpCmpGT, ">=": rvm.OpCmpGE,
	"==": rvm.OpCmpEQ, "!=": rvm.OpCmpNE,
}

func (g *codegen) expr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		g.asm.ConstInt(e.Value)
	case *FloatLit:
		g.asm.ConstFloat(e.Value)
	case *BoolLit:
		v := int64(0)
		if e.Value {
			v = 1
		}
		g.asm.ConstInt(v)
	case *VarRef:
		g.asm.Load(g.slot(e.Name))
	case *Unary:
		if err := g.expr(e.Sub); err != nil {
			return err
		}
		if e.Op == "-" {
			g.asm.Op(rvm.OpNeg)
		} else { // !x == (x == 0)
			g.asm.ConstInt(0).Op(rvm.OpCmpEQ)
		}
	case *Binary:
		switch e.Op {
		case "&&":
			// Short-circuit: if !left, result 0.
			falseL := g.fresh("and_false")
			endL := g.fresh("and_end")
			if err := g.expr(e.Left); err != nil {
				return err
			}
			g.asm.Jump(rvm.OpJumpIfNot, falseL)
			if err := g.expr(e.Right); err != nil {
				return err
			}
			g.asm.Jump(rvm.OpJump, endL)
			g.asm.Label(falseL)
			g.asm.ConstInt(0)
			g.asm.Label(endL)
		case "||":
			trueL := g.fresh("or_true")
			endL := g.fresh("or_end")
			if err := g.expr(e.Left); err != nil {
				return err
			}
			g.asm.Jump(rvm.OpJumpIf, trueL)
			if err := g.expr(e.Right); err != nil {
				return err
			}
			g.asm.Jump(rvm.OpJump, endL)
			g.asm.Label(trueL)
			g.asm.ConstInt(1)
			g.asm.Label(endL)
		default:
			if err := g.expr(e.Left); err != nil {
				return err
			}
			if err := g.expr(e.Right); err != nil {
				return err
			}
			op, ok := binOps[e.Op]
			if !ok {
				return fmt.Errorf("minilang: no opcode for %q", e.Op)
			}
			g.asm.Op(op)
		}
	case *Call:
		for _, a := range e.Args {
			if err := g.expr(a); err != nil {
				return err
			}
		}
		g.asm.Invoke(rvm.OpInvokeStatic, ClassName+"."+e.Name, len(e.Args))
	default:
		return fmt.Errorf("minilang: unknown expression %T", e)
	}
	return nil
}
