package minilang

import (
	"fmt"
	"strings"
)

// Corpus deterministically generates n minilang compilation units of
// varying shape. The dotty benchmark (Table 1) compiles a Scala codebase
// with the Dotty compiler; our equivalent workload compiles this corpus
// with the minilang compiler — lexing, parsing, typechecking, and code
// generation all execute per unit.
func Corpus(n int) []string {
	units := make([]string, 0, n)
	for i := 0; i < n; i++ {
		units = append(units, generateUnit(i))
	}
	return units
}

// generateUnit builds one source file parameterized by its index: a few
// helper functions (arithmetic, recursion, conditionals), a numeric loop,
// and a main tying them together. Every unit runs a canonical counted
// array loop — sequential array access dominates real JVM programs and is
// the representative hot path — and every third unit adds a second array
// pass (seed%3 == 1) or a stream map/filter/reduce pipeline (seed%3 == 2),
// so compiled units spend their time in the loops the tier-1 quickener
// and the bounds-check-elimination / stream-fusion passes target, not in
// call scaffolding.
func generateUnit(seed int) string {
	var b strings.Builder
	k := seed%7 + 2
	fmt.Fprintf(&b, "// unit %d\n", seed)
	fmt.Fprintf(&b, "func helper%d(x int) int {\n", seed)
	fmt.Fprintf(&b, "\tif x > %d { return x - %d; } else { return x + %d; }\n", k, k, k+1)
	b.WriteString("}\n")

	fmt.Fprintf(&b, "func fact%d(n int) int {\n", seed)
	b.WriteString("\tif n < 2 { return 1; }\n")
	fmt.Fprintf(&b, "\treturn n * fact%d(n - 1);\n", seed)
	b.WriteString("}\n")

	fmt.Fprintf(&b, "func scale%d(v float) float { return v * %d.5 + 0.25; }\n", seed, k)

	fmt.Fprintf(&b, "func loop%d(n int) int {\n", seed)
	b.WriteString("\tvar acc = 0;\n\tvar i = 0;\n")
	b.WriteString("\twhile i < n {\n")
	fmt.Fprintf(&b, "\t\tacc = (acc + helper%d(i) * %d) %% 1000003;\n", seed, k)
	b.WriteString("\t\ti = i + 1;\n\t}\n\treturn acc;\n}\n")

	fmt.Fprintf(&b, "func sweep%d(n int) int {\n", seed)
	b.WriteString("\tvar a = newarray(n);\n")
	fmt.Fprintf(&b, "\tfor var i = 0; i < len(a); i = i + 1 { a[i] = i * %d + %d; }\n", k, seed%11)
	b.WriteString("\tvar s = 0;\n")
	b.WriteString("\tfor var j = 0; j < len(a); j = j + 1 { s = (s + a[j]) % 1000003; }\n")
	b.WriteString("\treturn s;\n}\n")

	switch seed % 3 {
	case 1:
		fmt.Fprintf(&b, "func arr%d(n int) int {\n", seed)
		b.WriteString("\tvar a = newarray(n);\n")
		fmt.Fprintf(&b, "\tfor var i = 0; i < len(a); i = i + 1 { a[i] = i * i + %d; }\n", k)
		b.WriteString("\tvar s = 0;\n")
		b.WriteString("\tfor var j = 0; j < len(a); j = j + 1 { s = (s + a[j] * a[j]) % 1000003; }\n")
		b.WriteString("\treturn s;\n}\n")
	case 2:
		fmt.Fprintf(&b, "func mapf%d(x int) int { return x * %d + 1; }\n", seed, k)
		fmt.Fprintf(&b, "func keep%d(x int) bool { return x %% %d != 0; }\n", seed, 2+seed%3)
		fmt.Fprintf(&b, "func addf%d(a int, b int) int { return (a + b) %% 1000003; }\n", seed)
		fmt.Fprintf(&b, "func stream%d(n int) int {\n", seed)
		b.WriteString("\tvar a = newarray(n);\n")
		b.WriteString("\tfor var i = 0; i < len(a); i = i + 1 { a[i] = i; }\n")
		fmt.Fprintf(&b, "\treturn sreduce(sfilter(smap(a, mapf%d), keep%d), 0, addf%d);\n", seed, seed, seed)
		b.WriteString("}\n")
	}

	b.WriteString("func main() int {\n")
	fmt.Fprintf(&b, "\tvar a = loop%d(%d);\n", seed, 200+40*(seed%5))
	fmt.Fprintf(&b, "\tvar bv = fact%d(%d);\n", seed, 5+seed%4)
	fmt.Fprintf(&b, "\tvar c = a %% 97 + bv %% 89;\n")
	fmt.Fprintf(&b, "\tc = c + sweep%d(%d) %% 101;\n", seed, 4000+400*(seed%9))
	switch seed % 3 {
	case 1:
		fmt.Fprintf(&b, "\tc = c + arr%d(%d) %% 83;\n", seed, 3000+300*(seed%9))
	case 2:
		fmt.Fprintf(&b, "\tc = c + stream%d(%d) %% 79;\n", seed, 300+30*(seed%8))
	}
	b.WriteString("\tif c > 100 && c % 2 == 0 { c = c - 1; }\n")
	b.WriteString("\treturn c;\n}\n")
	return b.String()
}
