package minilang

import (
	"fmt"
	"strings"
)

// Corpus deterministically generates n minilang compilation units of
// varying shape. The dotty benchmark (Table 1) compiles a Scala codebase
// with the Dotty compiler; our equivalent workload compiles this corpus
// with the minilang compiler — lexing, parsing, typechecking, and code
// generation all execute per unit.
func Corpus(n int) []string {
	units := make([]string, 0, n)
	for i := 0; i < n; i++ {
		units = append(units, generateUnit(i))
	}
	return units
}

// generateUnit builds one source file parameterized by its index: a few
// helper functions (arithmetic, recursion, conditionals), a numeric loop,
// and a main tying them together.
func generateUnit(seed int) string {
	var b strings.Builder
	k := seed%7 + 2
	fmt.Fprintf(&b, "// unit %d\n", seed)
	fmt.Fprintf(&b, "func helper%d(x int) int {\n", seed)
	fmt.Fprintf(&b, "\tif x > %d { return x - %d; } else { return x + %d; }\n", k, k, k+1)
	b.WriteString("}\n")

	fmt.Fprintf(&b, "func fact%d(n int) int {\n", seed)
	b.WriteString("\tif n < 2 { return 1; }\n")
	fmt.Fprintf(&b, "\treturn n * fact%d(n - 1);\n", seed)
	b.WriteString("}\n")

	fmt.Fprintf(&b, "func scale%d(v float) float { return v * %d.5 + 0.25; }\n", seed, k)

	fmt.Fprintf(&b, "func loop%d(n int) int {\n", seed)
	b.WriteString("\tvar acc = 0;\n\tvar i = 0;\n")
	b.WriteString("\twhile i < n {\n")
	fmt.Fprintf(&b, "\t\tacc = (acc + helper%d(i) * %d) %% 1000003;\n", seed, k)
	b.WriteString("\t\ti = i + 1;\n\t}\n\treturn acc;\n}\n")

	b.WriteString("func main() int {\n")
	fmt.Fprintf(&b, "\tvar a = loop%d(%d);\n", seed, 50+10*(seed%5))
	fmt.Fprintf(&b, "\tvar bv = fact%d(%d);\n", seed, 5+seed%4)
	fmt.Fprintf(&b, "\tvar c = a %% 97 + bv %% 89;\n")
	b.WriteString("\tif c > 100 && c % 2 == 0 { c = c - 1; }\n")
	b.WriteString("\treturn c;\n}\n")
	return b.String()
}
