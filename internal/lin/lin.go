// Package lin is the flat-memory dense numeric kernel layer under the
// data-parallel ML benchmarks (als, movie-lens, log-regression,
// naive-bayes, chi-square, dec-tree, page-rank — the suite's
// "data-parallel, compute-bound" pillar). The seed kernels computed on
// map-keyed, pointer-chasing, allocation-per-iteration structures
// (map[int][]float64 factors, [][]float64 normal equations,
// map-of-slices contingency tables); this package provides the flat
// row-major alternatives the "Arrays in Practice" measurements identify
// as the dominant JVM/array-layout performance factor:
//
//   - Mat: a dense row-major matrix over one contiguous []float64, so a
//     row is a cache-line-sequential slice and the whole matrix is one
//     allocation.
//   - Dot/Axpy/Gemv: 4-way-unrolled level-1/level-2 kernels with the
//     bounds check hoisted out of the unrolled body.
//   - Syr/Syrk: symmetric rank-1/rank-k updates that touch only the
//     lower triangle — the ALS normal-equation accumulation does half
//     the flops of a full outer-product update.
//   - CholeskySolve: an in-place LL^T factor-and-solve for symmetric
//     positive-definite systems. The ALS normal equations
//     (Y^T·Y + λ·n·I with λ·n > 0) are SPD by construction, so Cholesky
//     is branch-free where the seed's pivoted Gaussian elimination
//     branched per column, and needs ~half the flops.
//   - Scratch (scratch.go): pooled per-worker scratch buffers so
//     steady-state solver iterations allocate nothing.
//   - CSR (csr.go): a compressed-sparse-row edge array for the rating
//     and web graphs, built once at workload setup.
//
// The package is dependency-free (standard library only, no metrics);
// callers in internal/rdd own the instrumentation semantics.
package lin

import "math"

// Mat is a dense row-major rows×cols matrix backed by one contiguous
// slice: element (i, j) lives at Data[i*Cols+j].
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a zeroed rows×cols matrix in one allocation.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Row returns row i as a full-capacity-clipped slice (appends cannot
// spill into the next row).
func (m *Mat) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Zero clears every element in place.
func (m *Mat) Zero() { clear(m.Data) }

// PadStride returns the row width to allocate so that rows of useful
// width w land on disjoint cache lines regardless of the backing
// array's alignment: w rounded up to a 64-byte multiple plus one spacer
// line. Use it for per-worker accumulator matrices written concurrently
// row-per-worker — without it, adjacent narrow rows share cache lines
// and the workers false-share on every write.
func PadStride(w int) int { return (w+7)&^7 + 8 }

// Dot returns Σ x[i]·y[i], 4-way unrolled with independent partial sums
// (breaks the loop-carried add dependency; the partials are combined in
// a fixed order so results are deterministic run to run).
func Dot(x, y []float64) float64 {
	n := len(x)
	y = y[:n] // one bounds check; the unrolled body is check-free
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y[i] += a·x[i] over len(x) elements, 4-way unrolled.
// The per-index updates are independent, so the unrolling does not
// change results.
func Axpy(a float64, x, y []float64) {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += a * x[i]
	}
}

// Gemv computes y = A·x (y must have length A.Rows); each row is one
// unrolled Dot over contiguous memory.
func Gemv(y []float64, a *Mat, x []float64) {
	y = y[:a.Rows]
	for i := range y {
		y[i] = Dot(a.Row(i), x)
	}
}

// Syr accumulates the symmetric rank-1 update A += α·x·xᵀ, writing only
// the lower triangle (row i receives columns 0..i). Consumers that need
// the full matrix (CholeskySolve) read only the lower triangle.
func Syr(a *Mat, alpha float64, x []float64) {
	n := a.Rows
	for i := 0; i < n; i++ {
		Axpy(alpha*x[i], x[:i+1], a.Data[i*n:i*n+i+1])
	}
}

// Syrk accumulates the symmetric rank-k update C += AᵀA over A's rows,
// writing only C's lower triangle.
func Syrk(c *Mat, a *Mat) {
	for r := 0; r < a.Rows; r++ {
		Syr(c, 1, a.Row(r))
	}
}

// spdTolerance is the pivot floor under which a system is treated as not
// positive definite — the same threshold the seed Gaussian elimination
// used to declare a pivot singular.
const spdTolerance = 1e-12

// CholeskySolve solves a·x = b in place for a symmetric
// positive-definite a, reading and overwriting only a's lower triangle
// (the factor L replaces it). x and b may alias; x must have length
// a.Rows. It reports false — leaving a and x partially overwritten —
// when a is not (numerically) positive definite, mirroring
// SolveLinearSystem's singularity contract. It never allocates.
func CholeskySolve(a *Mat, b, x []float64) bool {
	n := a.Rows
	d := a.Data
	// Factor a = L·Lᵀ in place (row-major Cholesky–Banachiewicz: every
	// inner product is a contiguous unrolled Dot).
	for j := 0; j < n; j++ {
		rowj := d[j*n : j*n+j]
		pivot := d[j*n+j] - Dot(rowj, rowj)
		if pivot < spdTolerance {
			return false
		}
		pivot = math.Sqrt(pivot)
		d[j*n+j] = pivot
		inv := 1 / pivot
		for i := j + 1; i < n; i++ {
			d[i*n+j] = (d[i*n+j] - Dot(d[i*n:i*n+j], rowj)) * inv
		}
	}
	x = x[:n]
	// Forward-substitute L·z = b into x (safe when x aliases b: index i
	// reads b[i] before writing x[i], and x[:i] is already solved).
	for i := 0; i < n; i++ {
		x[i] = (b[i] - Dot(d[i*n:i*n+i], x[:i])) / d[i*n+i]
	}
	// Back-substitute Lᵀ·x = z in place (Lᵀ[i][k] = L[k][i], a strided
	// column walk — n is a model rank here, small enough not to matter).
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= d[k*n+i] * x[k]
		}
		x[i] = s / d[i*n+i]
	}
	return true
}
