package lin

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestNewCSRBasic(t *testing.T) {
	// 4 rows; row 2 empty.
	src := []int32{0, 0, 1, 3, 3, 3}
	dst := []int32{1, 2, 0, 0, 1, 2}
	val := []float64{10, 20, 30, 40, 50, 60}
	c := NewCSR(4, src, dst, val)
	if c.NumRows() != 4 || c.NumEdges() != 6 {
		t.Fatalf("rows=%d edges=%d", c.NumRows(), c.NumEdges())
	}
	if got := c.RowCols(0); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Errorf("row 0 cols = %v", got)
	}
	if got := c.RowVals(0); !reflect.DeepEqual(got, []float64{10, 20}) {
		t.Errorf("row 0 vals = %v", got)
	}
	if got := c.RowCols(2); len(got) != 0 {
		t.Errorf("row 2 should be empty, got %v", got)
	}
	if c.Degree(3) != 3 || c.Degree(2) != 0 {
		t.Errorf("degrees: %d %d", c.Degree(3), c.Degree(2))
	}
}

func TestNewCSRUnweighted(t *testing.T) {
	c := NewCSR(2, []int32{1, 0}, []int32{0, 1}, nil)
	if c.Val != nil {
		t.Error("unweighted CSR allocated values")
	}
	if got := c.RowCols(1); !reflect.DeepEqual(got, []int32{0}) {
		t.Errorf("row 1 = %v", got)
	}
}

// TestNewCSRStable: entries within a row must keep input order, so
// float accumulations over rows are deterministic.
func TestNewCSRStable(t *testing.T) {
	src := []int32{1, 1, 1, 1}
	dst := []int32{3, 1, 2, 0}
	c := NewCSR(2, src, dst, nil)
	if got := c.RowCols(1); !reflect.DeepEqual(got, []int32{3, 1, 2, 0}) {
		t.Errorf("row order not stable: %v", got)
	}
}

// TestNewCSRRandomRoundTrip: every input edge appears exactly once in
// its source's row, in input order.
func TestNewCSRRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const rows, edges = 37, 500
	src := make([]int32, edges)
	dst := make([]int32, edges)
	val := make([]float64, edges)
	perRow := make([][]int, rows)
	for k := range src {
		s := int32(rng.Intn(rows))
		src[k] = s
		dst[k] = int32(rng.Intn(rows))
		val[k] = rng.Float64()
		perRow[s] = append(perRow[s], k)
	}
	c := NewCSR(rows, src, dst, val)
	for r := 0; r < rows; r++ {
		cols, vals := c.RowCols(r), c.RowVals(r)
		if len(cols) != len(perRow[r]) {
			t.Fatalf("row %d has %d entries, want %d", r, len(cols), len(perRow[r]))
		}
		for i, k := range perRow[r] {
			if cols[i] != dst[k] || vals[i] != val[k] {
				t.Fatalf("row %d entry %d = (%d,%v), want (%d,%v)",
					r, i, cols[i], vals[i], dst[k], val[k])
			}
		}
	}
}

func TestNewCSREmpty(t *testing.T) {
	c := NewCSR(0, nil, nil, nil)
	if c.NumRows() != 0 || c.NumEdges() != 0 {
		t.Errorf("empty CSR: rows=%d edges=%d", c.NumRows(), c.NumEdges())
	}
}
