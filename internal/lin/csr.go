package lin

// CSR is a compressed-sparse-row adjacency structure over compacted
// int32 row/column indices: row i's entries are Col[RowPtr[i]:RowPtr[i+1]]
// (and, for weighted graphs, the parallel Val range). Three contiguous
// arrays replace the seed kernels' map-of-slices groupings
// (map[int][]Rating, map[int][]int), so a row scan is a sequential walk
// and the whole graph is three allocations built once at workload setup.
type CSR struct {
	RowPtr []int32
	Col    []int32
	Val    []float64 // nil for unweighted graphs
}

// NumRows returns the number of rows.
func (c *CSR) NumRows() int { return len(c.RowPtr) - 1 }

// NumEdges returns the number of stored entries.
func (c *CSR) NumEdges() int { return len(c.Col) }

// RowCols returns row i's column indices.
func (c *CSR) RowCols(i int) []int32 {
	return c.Col[c.RowPtr[i]:c.RowPtr[i+1]]
}

// RowVals returns row i's values; only valid on weighted graphs.
func (c *CSR) RowVals(i int) []float64 {
	return c.Val[c.RowPtr[i]:c.RowPtr[i+1]]
}

// Degree returns row i's entry count.
func (c *CSR) Degree(i int) int {
	return int(c.RowPtr[i+1] - c.RowPtr[i])
}

// NewCSR builds a CSR with the classic two-pass counting sort: count
// per-row degrees, prefix-sum into RowPtr, then scatter entries. The
// build is stable — entries within a row keep their input order — so
// downstream float accumulations are deterministic. val may be nil for
// an unweighted graph; otherwise it must parallel src/dst.
func NewCSR(rows int, src, dst []int32, val []float64) *CSR {
	rowPtr := make([]int32, rows+1)
	for _, s := range src {
		rowPtr[s+1]++
	}
	for i := 0; i < rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	col := make([]int32, len(dst))
	var vals []float64
	if val != nil {
		vals = make([]float64, len(val))
	}
	// next[i] is the write cursor of row i during the scatter pass.
	next := make([]int32, rows)
	copy(next, rowPtr[:rows])
	for k, s := range src {
		at := next[s]
		next[s]++
		col[at] = dst[k]
		if vals != nil {
			vals[at] = val[k]
		}
	}
	return &CSR{RowPtr: rowPtr, Col: col, Val: vals}
}
