package lin

import "sync"

// Scratch is a reusable bundle of per-worker working memory for the
// solver hot loops: one square matrix and one vector, grown on demand
// and recycled through a sync.Pool so steady-state iterations (an ALS
// normal-equation solve per user, a PageRank accumulator row per
// partition) allocate nothing.
type Scratch struct {
	mat Mat
	vec []float64
}

// scratchRetainCap bounds how much backing memory a recycled Scratch may
// keep (in float64s, per buffer), so one pathological request cannot pin
// a huge allocation in the pool — the same release discipline the STM
// transaction pool uses for its read/write vectors.
const scratchRetainCap = 1 << 16

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch returns a scratch bundle from the pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch recycles s, dropping oversized backing buffers.
func PutScratch(s *Scratch) {
	if cap(s.mat.Data) > scratchRetainCap {
		s.mat.Data = nil
	}
	if cap(s.vec) > scratchRetainCap {
		s.vec = nil
	}
	scratchPool.Put(s)
}

// MatN returns the scratch n×n matrix, zeroed. The backing array is
// grow-only, so repeated calls at the same size never allocate.
func (s *Scratch) MatN(n int) *Mat {
	need := n * n
	if cap(s.mat.Data) < need {
		s.mat.Data = make([]float64, need)
	}
	s.mat.Data = s.mat.Data[:need]
	s.mat.Rows, s.mat.Cols = n, n
	clear(s.mat.Data)
	return &s.mat
}

// Vec returns the scratch vector resized to n, zeroed, grow-only.
func (s *Scratch) Vec(n int) []float64 {
	if cap(s.vec) < n {
		s.vec = make([]float64, n)
	}
	s.vec = s.vec[:n]
	clear(s.vec)
	return s.vec
}
