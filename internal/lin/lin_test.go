package lin

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func almostEq(a, b, eps float64) bool {
	d := math.Abs(a - b)
	return d <= eps || d <= eps*math.Max(math.Abs(a), math.Abs(b))
}

// naiveDot is the straight-line reference the unrolled kernels are
// checked against.
func naiveDot(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

func TestDotMatchesNaiveAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 33; n++ {
		x, y := randVec(rng, n), randVec(rng, n)
		got, want := Dot(x, y), naiveDot(x, y)
		if !almostEq(got, want, tol) {
			t.Errorf("Dot(n=%d) = %v, want %v", n, got, want)
		}
	}
}

func TestAxpyMatchesNaiveAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n <= 33; n++ {
		x, y := randVec(rng, n), randVec(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = y[i] + 0.7*x[i]
		}
		Axpy(0.7, x, y)
		for i := range y {
			if !almostEq(y[i], want[i], tol) {
				t.Fatalf("Axpy(n=%d)[%d] = %v, want %v", n, i, y[i], want[i])
			}
		}
	}
}

func TestGemv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewMat(5, 7)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	x := randVec(rng, 7)
	y := make([]float64, 5)
	Gemv(y, a, x)
	for i := 0; i < 5; i++ {
		if want := naiveDot(a.Row(i), x); !almostEq(y[i], want, tol) {
			t.Errorf("Gemv[%d] = %v, want %v", i, y[i], want)
		}
	}
}

func TestMatRowLayout(t *testing.T) {
	m := NewMat(3, 4)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, float64(i*10+j))
		}
	}
	if m.At(2, 3) != 23 || m.Data[2*4+3] != 23 {
		t.Errorf("At/Set disagree with flat layout: %v", m.Data)
	}
	row := m.Row(1)
	if len(row) != 4 || row[0] != 10 || row[3] != 13 {
		t.Errorf("Row(1) = %v", row)
	}
	// Row slices are capacity-clipped: appends must not spill into row 2.
	if cap(row) != 4 {
		t.Errorf("Row cap = %d, want 4", cap(row))
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero left residue")
		}
	}
}

// TestSyrLowerTriangleOnly: Syr must produce the exact lower triangle of
// α·x·xᵀ and leave the strict upper triangle untouched.
func TestSyrLowerTriangleOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 6
	x := randVec(rng, n)
	a := NewMat(n, n)
	sentinel := 99.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a.Set(i, j, sentinel)
		}
	}
	Syr(a, 1.5, x)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j > i {
				if a.At(i, j) != sentinel {
					t.Errorf("upper (%d,%d) touched: %v", i, j, a.At(i, j))
				}
			} else if want := 1.5 * x[i] * x[j]; !almostEq(a.At(i, j), want, tol) {
				t.Errorf("lower (%d,%d) = %v, want %v", i, j, a.At(i, j), want)
			}
		}
	}
}

func TestSyrkMatchesExplicitProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewMat(9, 4) // 9 rank-1 updates of a 4×4 accumulator
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	c := NewMat(4, 4)
	Syrk(c, a)
	for i := 0; i < 4; i++ {
		for j := 0; j <= i; j++ {
			want := 0.0
			for r := 0; r < 9; r++ {
				want += a.At(r, i) * a.At(r, j)
			}
			if !almostEq(c.At(i, j), want, 1e-9) {
				t.Errorf("Syrk (%d,%d) = %v, want %v", i, j, c.At(i, j), want)
			}
		}
	}
}

// randSPD builds a well-conditioned SPD system: MᵀM + d·I with d > 0,
// stored in the lower triangle only (the CholeskySolve input contract).
func randSPD(rng *rand.Rand, n int) (*Mat, []float64) {
	m := NewMat(n, n)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	a := NewMat(n, n)
	Syrk(a, m)
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += 0.5 + rng.Float64()
	}
	return a, randVec(rng, n)
}

// mirrorLower fills the strict upper triangle from the lower so the
// residual check can multiply with the full matrix.
func mirrorLower(a *Mat) {
	n := a.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a.Set(i, j, a.At(j, i))
		}
	}
}

func TestCholeskySolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for n := 1; n <= 12; n++ {
		a, b := randSPD(rng, n)
		full := NewMat(n, n)
		copy(full.Data, a.Data)
		mirrorLower(full)
		x := make([]float64, n)
		if !CholeskySolve(a, b, x) {
			t.Fatalf("n=%d: SPD system rejected", n)
		}
		ax := make([]float64, n)
		Gemv(ax, full, x)
		for i := range ax {
			if !almostEq(ax[i], b[i], 1e-8) {
				t.Errorf("n=%d residual at %d: A·x=%v want %v", n, i, ax[i], b[i])
			}
		}
	}
}

func TestCholeskySolveAliasedRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := randSPD(rng, 5)
	aCopy := NewMat(5, 5)
	copy(aCopy.Data, a.Data)
	want := make([]float64, 5)
	if !CholeskySolve(aCopy, b, want) {
		t.Fatal("reference solve failed")
	}
	// Solve again with x aliasing b.
	x := append([]float64(nil), b...)
	if !CholeskySolve(a, x, x) {
		t.Fatal("aliased solve failed")
	}
	for i := range x {
		if !almostEq(x[i], want[i], tol) {
			t.Errorf("aliased x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestCholeskySolveRejectsIndefinite(t *testing.T) {
	// Diagonal with a negative entry: not positive definite.
	a := NewMat(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if CholeskySolve(a, []float64{1, 1}, make([]float64, 2)) {
		t.Error("indefinite system accepted")
	}
	// Singular (rank-deficient) system.
	s := NewMat(2, 2)
	Syr(s, 1, []float64{1, 1}) // [1 1; 1 1], rank 1
	if CholeskySolve(s, []float64{1, 1}, make([]float64, 2)) {
		t.Error("singular system accepted")
	}
}

// TestCholeskyPropertyRandomSPD is the quick.Check form: any
// well-conditioned SPD system must solve with a small residual.
func TestCholeskyPropertyRandomSPD(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz)%8 + 1
		a, b := randSPD(rng, n)
		full := NewMat(n, n)
		copy(full.Data, a.Data)
		mirrorLower(full)
		x := make([]float64, n)
		if !CholeskySolve(a, b, x) {
			return false
		}
		ax := make([]float64, n)
		Gemv(ax, full, x)
		for i := range ax {
			if !almostEq(ax[i], b[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScratchReuseAndZeroing(t *testing.T) {
	s := GetScratch()
	m := s.MatN(4)
	for i := range m.Data {
		m.Data[i] = 1
	}
	v := s.Vec(8)
	for i := range v {
		v[i] = 1
	}
	// Same scratch, same sizes: must come back zeroed without allocating.
	m2, v2 := s.MatN(4), s.Vec(8)
	for _, x := range m2.Data {
		if x != 0 {
			t.Fatal("MatN not zeroed on reuse")
		}
	}
	for _, x := range v2 {
		if x != 0 {
			t.Fatal("Vec not zeroed on reuse")
		}
	}
	if m2.Rows != 4 || m2.Cols != 4 || len(v2) != 8 {
		t.Fatalf("scratch shapes: %dx%d, %d", m2.Rows, m2.Cols, len(v2))
	}
	// Shrinking reuses the grown backing.
	before := cap(s.mat.Data)
	_ = s.MatN(2)
	if cap(s.mat.Data) != before {
		t.Error("MatN shrank the backing array")
	}
	PutScratch(s)
}

func TestScratchSteadyStateAllocs(t *testing.T) {
	s := GetScratch()
	defer PutScratch(s)
	_ = s.MatN(8)
	_ = s.Vec(64)
	allocs := testing.AllocsPerRun(100, func() {
		m := s.MatN(8)
		m.Data[0] = 1
		v := s.Vec(64)
		v[0] = 1
	})
	if allocs != 0 {
		t.Errorf("scratch steady state allocates %.1f/op, want 0", allocs)
	}
}
