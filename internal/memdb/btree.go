package memdb

import (
	"sync"

	"renaissance/internal/metrics"
)

// btreeOrder is the maximum number of keys per node (order-32 B-tree keeps
// the tree shallow and the nodes cache-friendly).
const btreeOrder = 32

// BTree is an ordered store backed by a B-tree under a readers–writer
// lock: range scans and gets take the read lock, mutations the write lock.
type BTree struct {
	mu   sync.RWMutex
	root *btreeNode
	size int
}

type btreeNode struct {
	keys     []string
	values   [][]byte
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return n.children == nil }

// NewBTree creates an empty B-tree store.
func NewBTree() *BTree {
	metrics.IncObject()
	return &BTree{root: &btreeNode{}}
}

// Name implements Store.
func (t *BTree) Name() string { return "btree" }

// find returns the index of key in n.keys, or the child index to descend.
func (n *btreeNode) find(key string) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && n.keys[lo] == key
}

// Get implements Store.
func (t *BTree) Get(key string) ([]byte, bool) {
	metrics.IncSynch()
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for {
		i, found := n.find(key)
		if found {
			return n.values[i], true
		}
		if n.leaf() {
			return nil, false
		}
		n = n.children[i]
	}
}

// Put implements Store.
func (t *BTree) Put(key string, value []byte) {
	metrics.IncSynch()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.root.keys) == btreeOrder {
		// Split the root preemptively (top-down insertion).
		metrics.IncObject()
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.root.splitChild(0)
	}
	if t.insertNonFull(t.root, key, value) {
		t.size++
	}
}

// splitChild splits the full child at index i of n.
func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	mid := btreeOrder / 2
	metrics.IncObject()
	right := &btreeNode{
		keys:   append([]string(nil), child.keys[mid+1:]...),
		values: append([][]byte(nil), child.values[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
	}
	upKey, upVal := child.keys[mid], child.values[mid]
	child.keys = child.keys[:mid]
	child.values = child.values[:mid]
	if !child.leaf() {
		child.children = child.children[:mid+1]
	}

	n.keys = append(n.keys, "")
	n.values = append(n.values, nil)
	copy(n.keys[i+1:], n.keys[i:])
	copy(n.values[i+1:], n.values[i:])
	n.keys[i], n.values[i] = upKey, upVal

	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// insertNonFull inserts into a node known not to be full; it reports
// whether a new key was added (vs. replaced).
func (t *BTree) insertNonFull(n *btreeNode, key string, value []byte) bool {
	for {
		i, found := n.find(key)
		if found {
			n.values[i] = value
			return false
		}
		if n.leaf() {
			n.keys = append(n.keys, "")
			n.values = append(n.values, nil)
			copy(n.keys[i+1:], n.keys[i:])
			copy(n.values[i+1:], n.values[i:])
			n.keys[i], n.values[i] = key, value
			return true
		}
		if len(n.children[i].keys) == btreeOrder {
			n.splitChild(i)
			if key == n.keys[i] {
				n.values[i] = value
				return false
			}
			if key > n.keys[i] {
				i++
			}
		}
		n = n.children[i]
	}
}

// Delete implements Store. Deletion uses the simple "remove and rebuild
// leaf path" strategy: the key is located and removed; internal keys are
// replaced by their in-order predecessor. Nodes are allowed to underflow
// (no rebalancing), which keeps lookups correct and is a common
// simplification for in-memory stores with mixed workloads.
func (t *BTree) Delete(key string) bool {
	metrics.IncSynch()
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for {
		i, found := n.find(key)
		if found {
			if n.leaf() {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.values = append(n.values[:i], n.values[i+1:]...)
			} else {
				// Replace with in-order predecessor from the left subtree.
				pred := n.children[i]
				for !pred.leaf() {
					pred = pred.children[len(pred.children)-1]
				}
				last := len(pred.keys) - 1
				n.keys[i], n.values[i] = pred.keys[last], pred.values[last]
				pred.keys = pred.keys[:last]
				pred.values = pred.values[:last]
			}
			t.size--
			return true
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
}

// Len implements Store.
func (t *BTree) Len() int {
	metrics.IncSynch()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Range implements Store.
func (t *BTree) Range(from, to string, fn func(string, []byte) bool) {
	metrics.IncSynch()
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.root.rangeScan(from, to, fn)
}

func (n *btreeNode) rangeScan(from, to string, fn func(string, []byte) bool) bool {
	i, _ := n.find(from)
	for ; i < len(n.keys); i++ {
		if !n.leaf() {
			if !n.children[i].rangeScan(from, to, fn) {
				return false
			}
		}
		if n.keys[i] >= to {
			return false
		}
		if n.keys[i] >= from {
			if !fn(n.keys[i], n.values[i]) {
				return false
			}
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].rangeScan(from, to, fn)
	}
	return true
}
