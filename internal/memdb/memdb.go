// Package memdb implements three concurrent in-memory key-value engines
// behind one interface, the substrate of the db-shootout benchmark
// (Table 1: "query-processing, data structures"): a sharded hash store
// (lock-striped maps), an ordered B-tree store (reader/writer locked), and
// a lock-free skip list (CAS-linked, logical deletion). The paper's
// db-shootout runs a parallel shootout over multiple Java in-memory
// databases; these engines play those roles.
package memdb

import (
	"sort"
	"sync"

	"renaissance/internal/metrics"
)

// Store is the common key-value engine interface.
type Store interface {
	// Put inserts or replaces the value for key.
	Put(key string, value []byte)
	// Get returns the value for key.
	Get(key string) ([]byte, bool)
	// Delete removes the key, reporting whether it was present.
	Delete(key string) bool
	// Range visits keys in [from, to) in ascending order until fn returns
	// false.
	Range(from, to string, fn func(key string, value []byte) bool)
	// Len returns the number of live keys.
	Len() int
	// Name identifies the engine in shootout reports.
	Name() string
}

// Engines returns one fresh instance of every engine, the shootout lineup.
func Engines() []Store {
	return []Store{NewShardedHash(16), NewBTree(), NewSkipList()}
}

// fnv hashes a key for shard selection.
func fnv(key string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// ShardedHash is a hash store with lock striping: each shard is a mutex-
// protected map, so unrelated keys do not contend.
type ShardedHash struct {
	shards []hashShard
}

type hashShard struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewShardedHash creates a hash store with the given shard count (0 means
// 16).
func NewShardedHash(shards int) *ShardedHash {
	if shards <= 0 {
		shards = 16
	}
	metrics.IncObject()
	s := &ShardedHash{shards: make([]hashShard, shards)}
	for i := range s.shards {
		s.shards[i].m = make(map[string][]byte)
	}
	return s
}

// Name implements Store.
func (s *ShardedHash) Name() string { return "sharded-hash" }

func (s *ShardedHash) shard(key string) *hashShard {
	return &s.shards[fnv(key)%uint64(len(s.shards))]
}

// Put implements Store.
func (s *ShardedHash) Put(key string, value []byte) {
	sh := s.shard(key)
	metrics.IncSynch()
	sh.mu.Lock()
	sh.m[key] = value
	sh.mu.Unlock()
}

// Get implements Store.
func (s *ShardedHash) Get(key string) ([]byte, bool) {
	sh := s.shard(key)
	metrics.IncSynch()
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

// Delete implements Store.
func (s *ShardedHash) Delete(key string) bool {
	sh := s.shard(key)
	metrics.IncSynch()
	sh.mu.Lock()
	_, ok := sh.m[key]
	delete(sh.m, key)
	sh.mu.Unlock()
	return ok
}

// Len implements Store.
func (s *ShardedHash) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		metrics.IncSynch()
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Range implements Store. Hash stores have no order, so the range
// materializes and sorts matching keys — the documented cost of range
// queries on hash engines in the shootout.
func (s *ShardedHash) Range(from, to string, fn func(string, []byte) bool) {
	type kv struct {
		k string
		v []byte
	}
	var matches []kv
	for i := range s.shards {
		sh := &s.shards[i]
		metrics.IncSynch()
		sh.mu.RLock()
		for k, v := range sh.m {
			if k >= from && k < to {
				matches = append(matches, kv{k, v})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].k < matches[j].k })
	for _, m := range matches {
		if !fn(m.k, m.v) {
			return
		}
	}
}
