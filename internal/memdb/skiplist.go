package memdb

import (
	"sync/atomic"

	"renaissance/internal/metrics"
)

// skipMaxLevel bounds the skip list height (2^24 keys expected maximum).
const skipMaxLevel = 24

// SkipList is a lock-free ordered store in the style of Java's
// ConcurrentSkipListMap: nodes are linked with atomic pointers and inserted
// with CAS; deletion is logical (the value pointer is CASed to nil), so no
// node is ever unlinked and traversals need no hazard tracking. Logically
// deleted nodes are revived in place by a later Put of the same key.
type SkipList struct {
	head *skipNode
	size atomic.Int64
}

type skipNode struct {
	key   string
	value atomic.Pointer[[]byte]
	next  []atomic.Pointer[skipNode]
}

// NewSkipList creates an empty lock-free skip list store.
func NewSkipList() *SkipList {
	metrics.IncObject()
	return &SkipList{head: &skipNode{next: make([]atomic.Pointer[skipNode], skipMaxLevel)}}
}

// Name implements Store.
func (s *SkipList) Name() string { return "skiplist" }

// levelFor derives a deterministic node height from the key hash, so
// structure does not depend on insertion interleaving.
func levelFor(key string) int {
	h := fnv(key)
	lvl := 1
	for h&3 == 3 && lvl < skipMaxLevel {
		lvl++
		h >>= 2
	}
	return lvl
}

// findPreds fills preds/succs with the nodes around key at every level.
func (s *SkipList) findPreds(key string, preds, succs []*skipNode) *skipNode {
	var found *skipNode
	prev := s.head
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		metrics.IncAtomic()
		cur := prev.next[lvl].Load()
		for cur != nil && cur.key < key {
			prev = cur
			metrics.IncAtomic()
			cur = prev.next[lvl].Load()
		}
		if cur != nil && cur.key == key {
			found = cur
		}
		preds[lvl] = prev
		succs[lvl] = cur
	}
	return found
}

// Put implements Store.
func (s *SkipList) Put(key string, value []byte) {
	v := &value
	var preds, succs [skipMaxLevel]*skipNode
	for {
		if node := s.findPreds(key, preds[:], succs[:]); node != nil {
			// Key exists (possibly logically deleted): swap the value in.
			metrics.IncAtomic()
			old := node.value.Swap(v)
			if old == nil {
				s.size.Add(1)
			}
			return
		}
		lvl := levelFor(key)
		metrics.IncObject()
		node := &skipNode{key: key, next: make([]atomic.Pointer[skipNode], lvl)}
		node.value.Store(v)
		for i := 0; i < lvl; i++ {
			node.next[i].Store(succs[i])
		}
		// Linearization point: CAS into the bottom level.
		metrics.IncAtomic()
		if !preds[0].next[0].CompareAndSwap(succs[0], node) {
			continue // lost the race; retry from scratch
		}
		s.size.Add(1)
		// Link the upper levels best-effort; a failed CAS means the
		// neighborhood changed, so re-find and retry that level.
		for i := 1; i < lvl; i++ {
			for {
				metrics.IncAtomic()
				if preds[i].next[i].CompareAndSwap(succs[i], node) {
					break
				}
				s.findPreds(key, preds[:], succs[:])
				if succs[i] == node {
					break // someone already sees us here
				}
				node.next[i].Store(succs[i])
			}
		}
		return
	}
}

// Get implements Store.
func (s *SkipList) Get(key string) ([]byte, bool) {
	prev := s.head
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		metrics.IncAtomic()
		cur := prev.next[lvl].Load()
		for cur != nil && cur.key < key {
			prev = cur
			metrics.IncAtomic()
			cur = prev.next[lvl].Load()
		}
		if cur != nil && cur.key == key {
			metrics.IncAtomic()
			if v := cur.value.Load(); v != nil {
				return *v, true
			}
			return nil, false
		}
	}
	return nil, false
}

// Delete implements Store (logical deletion).
func (s *SkipList) Delete(key string) bool {
	var preds, succs [skipMaxLevel]*skipNode
	node := s.findPreds(key, preds[:], succs[:])
	if node == nil {
		return false
	}
	metrics.IncAtomic()
	if node.value.Swap(nil) != nil {
		s.size.Add(-1)
		return true
	}
	return false
}

// Len implements Store.
func (s *SkipList) Len() int {
	metrics.IncAtomic()
	return int(s.size.Load())
}

// Range implements Store, scanning the bottom level and skipping logically
// deleted nodes.
func (s *SkipList) Range(from, to string, fn func(string, []byte) bool) {
	prev := s.head
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		metrics.IncAtomic()
		cur := prev.next[lvl].Load()
		for cur != nil && cur.key < from {
			prev = cur
			metrics.IncAtomic()
			cur = prev.next[lvl].Load()
		}
	}
	metrics.IncAtomic()
	cur := prev.next[0].Load()
	for cur != nil && cur.key < to {
		metrics.IncAtomic()
		if v := cur.value.Load(); v != nil && cur.key >= from {
			if !fn(cur.key, *v) {
				return
			}
		}
		metrics.IncAtomic()
		cur = cur.next[0].Load()
	}
}
