package memdb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func allEngines(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Helper()
	for _, s := range Engines() {
		s := s
		t.Run(s.Name(), func(t *testing.T) { fn(t, s) })
	}
}

func TestPutGetDelete(t *testing.T) {
	allEngines(t, func(t *testing.T, s Store) {
		if _, ok := s.Get("missing"); ok {
			t.Error("found missing key")
		}
		s.Put("k1", []byte("v1"))
		s.Put("k2", []byte("v2"))
		if v, ok := s.Get("k1"); !ok || string(v) != "v1" {
			t.Errorf("Get k1 = (%q, %v)", v, ok)
		}
		s.Put("k1", []byte("v1b")) // overwrite
		if v, _ := s.Get("k1"); string(v) != "v1b" {
			t.Errorf("overwrite failed: %q", v)
		}
		if s.Len() != 2 {
			t.Errorf("Len = %d, want 2", s.Len())
		}
		if !s.Delete("k1") {
			t.Error("Delete existing returned false")
		}
		if s.Delete("k1") {
			t.Error("Delete missing returned true")
		}
		if _, ok := s.Get("k1"); ok {
			t.Error("deleted key still present")
		}
		if s.Len() != 1 {
			t.Errorf("Len after delete = %d", s.Len())
		}
	})
}

func TestReinsertAfterDelete(t *testing.T) {
	allEngines(t, func(t *testing.T, s Store) {
		s.Put("x", []byte("1"))
		s.Delete("x")
		s.Put("x", []byte("2"))
		if v, ok := s.Get("x"); !ok || string(v) != "2" {
			t.Errorf("reinserted = (%q, %v)", v, ok)
		}
		if s.Len() != 1 {
			t.Errorf("Len = %d", s.Len())
		}
	})
}

func TestManyKeysSortedRange(t *testing.T) {
	allEngines(t, func(t *testing.T, s Store) {
		const n = 2000
		perm := rand.New(rand.NewSource(1)).Perm(n)
		for _, i := range perm {
			s.Put(fmt.Sprintf("key-%06d", i), []byte{byte(i)})
		}
		if s.Len() != n {
			t.Fatalf("Len = %d, want %d", s.Len(), n)
		}
		// Full scan is ordered and complete.
		var keys []string
		s.Range("", "zzzz", func(k string, v []byte) bool {
			keys = append(keys, k)
			return true
		})
		if len(keys) != n {
			t.Fatalf("range visited %d keys, want %d", len(keys), n)
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("range out of order at %d: %q >= %q", i, keys[i-1], keys[i])
			}
		}
		// Bounded range.
		count := 0
		s.Range("key-000100", "key-000200", func(k string, v []byte) bool {
			count++
			return true
		})
		if count != 100 {
			t.Errorf("bounded range visited %d, want 100", count)
		}
		// Early termination.
		count = 0
		s.Range("", "zzzz", func(string, []byte) bool {
			count++
			return count < 10
		})
		if count != 10 {
			t.Errorf("early-terminated range visited %d", count)
		}
	})
}

func TestRangeSkipsDeleted(t *testing.T) {
	allEngines(t, func(t *testing.T, s Store) {
		for i := 0; i < 10; i++ {
			s.Put(fmt.Sprintf("k%d", i), []byte("v"))
		}
		s.Delete("k3")
		s.Delete("k7")
		count := 0
		s.Range("", "z", func(k string, v []byte) bool {
			if k == "k3" || k == "k7" {
				t.Errorf("deleted key %q visited", k)
			}
			count++
			return true
		})
		if count != 8 {
			t.Errorf("visited %d, want 8", count)
		}
	})
}

func TestConcurrentDisjointWriters(t *testing.T) {
	allEngines(t, func(t *testing.T, s Store) {
		const workers, perWorker = 8, 300
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					key := fmt.Sprintf("w%d-k%d", w, i)
					s.Put(key, []byte(key))
				}
			}(w)
		}
		wg.Wait()
		if s.Len() != workers*perWorker {
			t.Errorf("Len = %d, want %d", s.Len(), workers*perWorker)
		}
		for w := 0; w < workers; w++ {
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if v, ok := s.Get(key); !ok || string(v) != key {
					t.Fatalf("lost write %q", key)
				}
			}
		}
	})
}

func TestConcurrentMixedWorkload(t *testing.T) {
	allEngines(t, func(t *testing.T, s Store) {
		for i := 0; i < 100; i++ {
			s.Put(fmt.Sprintf("base-%03d", i), []byte("x"))
		}
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < 500; i++ {
					key := fmt.Sprintf("base-%03d", rng.Intn(100))
					switch rng.Intn(3) {
					case 0:
						s.Put(key, []byte{byte(i)})
					case 1:
						s.Get(key)
					case 2:
						s.Range("base-000", "base-050", func(string, []byte) bool { return true })
					}
				}
			}(w)
		}
		wg.Wait()
		// Every base key still resolves (no deletes in this mix).
		for i := 0; i < 100; i++ {
			if _, ok := s.Get(fmt.Sprintf("base-%03d", i)); !ok {
				t.Fatalf("key base-%03d lost", i)
			}
		}
	})
}

// Property: every engine agrees with a plain map reference model under a
// random operation sequence.
func TestPropertyMatchesMapModel(t *testing.T) {
	type op struct {
		Kind  uint8
		Key   uint8
		Value uint8
	}
	for _, engine := range []func() Store{
		func() Store { return NewShardedHash(4) },
		func() Store { return NewBTree() },
		func() Store { return NewSkipList() },
	} {
		engine := engine
		f := func(ops []op) bool {
			s := engine()
			model := map[string][]byte{}
			for _, o := range ops {
				key := fmt.Sprintf("k%d", o.Key%32)
				switch o.Kind % 3 {
				case 0:
					v := []byte{o.Value}
					s.Put(key, v)
					model[key] = v
				case 1:
					got, ok := s.Get(key)
					want, wok := model[key]
					if ok != wok || (ok && string(got) != string(want)) {
						return false
					}
				case 2:
					got := s.Delete(key)
					_, want := model[key]
					delete(model, key)
					if got != want {
						return false
					}
				}
			}
			return s.Len() == len(model)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", engine().Name(), err)
		}
	}
}

func TestBTreeSplits(t *testing.T) {
	// Insert enough ascending keys to force multiple root splits.
	bt := NewBTree()
	const n = 5000
	for i := 0; i < n; i++ {
		bt.Put(fmt.Sprintf("%08d", i), []byte{1})
	}
	if bt.Len() != n {
		t.Fatalf("Len = %d", bt.Len())
	}
	for i := 0; i < n; i += 97 {
		if _, ok := bt.Get(fmt.Sprintf("%08d", i)); !ok {
			t.Fatalf("missing key %d after splits", i)
		}
	}
	// Delete every third key, verify the rest survive.
	for i := 0; i < n; i += 3 {
		if !bt.Delete(fmt.Sprintf("%08d", i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := 0; i < n; i++ {
		_, ok := bt.Get(fmt.Sprintf("%08d", i))
		if (i%3 == 0) == ok {
			t.Fatalf("key %d presence = %v after deletions", i, ok)
		}
	}
}

func TestSkipListLevels(t *testing.T) {
	if l := levelFor("some-key"); l < 1 || l > skipMaxLevel {
		t.Errorf("levelFor out of range: %d", l)
	}
	if levelFor("abc") != levelFor("abc") {
		t.Error("levelFor not deterministic")
	}
}

func TestEnginesLineup(t *testing.T) {
	engines := Engines()
	if len(engines) != 3 {
		t.Fatalf("lineup = %d engines", len(engines))
	}
	names := map[string]bool{}
	for _, e := range engines {
		names[e.Name()] = true
	}
	for _, want := range []string{"sharded-hash", "btree", "skiplist"} {
		if !names[want] {
			t.Errorf("missing engine %q", want)
		}
	}
}
