// Package hdr implements an HDR-style log-bucketed latency histogram: the
// recording structure of the open-loop serving tier (DESIGN.md §11). It
// plays the role HdrHistogram plays under wrk2 and Gil Tene's coordinated-
// omission work: constant-time recording into logarithmically spaced
// buckets whose width is a bounded fraction of the recorded value, so the
// full latency *distribution* — not a mean — survives millions of samples
// in a few kilobytes, and histograms from concurrent load generators merge
// losslessly by bucket-wise addition.
//
// Layout. Values are non-negative int64s (the serving tier records
// nanoseconds). Bucket 0 holds one slot per value in [0, 32) — exact unit
// resolution. Every further bucket b covers one power of two,
// [16·2^b, 32·2^b), split into 16 sub-buckets of width 2^b, so a recorded
// value lands in a slot whose width is at most 1/16 of its magnitude and
// the slot midpoint is within ±1/32 (3.125%) of any value it absorbs.
// 32 + 59·16 = 976 slots cover the whole int64 range.
//
// Recording is one atomic add plus two bounded CAS loops (exact min/max
// tracking), so many goroutines record into one histogram without locks
// and without coordinating with readers.
package hdr

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBucketBits fixes the resolution: 2^subBucketBits sub-buckets in
	// bucket 0, half that in every exponential bucket.
	subBucketBits  = 5
	subBucketCount = 1 << subBucketBits // 32
	subBucketHalf  = subBucketCount / 2 // 16

	// bucketCount is how many exponential buckets follow bucket 0 before
	// int64 runs out of bits.
	bucketCount = 64 - subBucketBits // 59

	// slotCount is the total slot array length.
	slotCount = subBucketCount + bucketCount*subBucketHalf

	// MaxRelativeError bounds |reported − recorded| / recorded for any
	// single recorded value reported back by Quantile (midpoint of a slot
	// whose width is ≤ 1/16 of its lower bound).
	MaxRelativeError = 1.0 / 32
)

// Histogram is a fixed-size log-bucketed histogram safe for concurrent
// recording. The zero value is NOT ready to use; call New.
type Histogram struct {
	counts [slotCount]atomic.Int64
	total  atomic.Int64
	min    atomic.Int64 // exact smallest recorded value
	max    atomic.Int64 // exact largest recorded value
}

// New returns an empty histogram.
func New() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// slotFor maps a non-negative value to its slot index.
func slotFor(v int64) int {
	if v < subBucketCount {
		return int(v)
	}
	b := bits.Len64(uint64(v)) - subBucketBits // ≥ 1
	sub := int(v>>uint(b)) - subBucketHalf     // ∈ [0, subBucketHalf)
	return subBucketCount + (b-1)*subBucketHalf + sub
}

// slotBounds returns the [lower, upper) value range of a slot.
func slotBounds(idx int) (lower, upper int64) {
	if idx < subBucketCount {
		return int64(idx), int64(idx) + 1
	}
	b := (idx-subBucketCount)/subBucketHalf + 1
	sub := int64((idx-subBucketCount)%subBucketHalf + subBucketHalf)
	return sub << uint(b), (sub + 1) << uint(b)
}

// slotMid returns the representative (midpoint) value of a slot.
func slotMid(idx int) int64 {
	lower, upper := slotBounds(idx)
	return lower + (upper-lower)/2
}

// Record adds one observation. Negative values clamp to 0.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[slotFor(v)].Add(1)
	h.total.Add(1)
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// RecordDuration records a duration in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(d.Nanoseconds()) }

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Min returns the exact smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.total.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the exact largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns the value at quantile q ∈ [0, 1] by the nearest-rank
// rule: the representative value of the slot holding the ⌈q·count⌉-th
// smallest observation, clamped into [Min, Max] so boundary quantiles
// (q=0, q=1) and single-value histograms are exact. Within the clamp the
// result is within MaxRelativeError of the true ranked observation. An
// empty histogram returns 0.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < slotCount; i++ {
		if c := h.counts[i].Load(); c > 0 {
			cum += c
			if cum >= rank {
				return h.clamp(slotMid(i))
			}
		}
	}
	return h.Max() // concurrent recording moved the total; max is safe
}

func (h *Histogram) clamp(v int64) int64 {
	if min := h.min.Load(); v < min {
		return min
	}
	if max := h.max.Load(); v > max {
		return max
	}
	return v
}

// QuantileDuration returns Quantile(q) as a duration.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// Merge adds every observation of o into h, losslessly: the merged
// histogram's slot counts are the element-wise sums and its min/max are
// the combined extremes, so merging is associative and commutative and a
// quantile of the merge equals the quantile of recording both input
// streams into one histogram. o is read atomically but should be quiescent
// for an exact merge.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	var moved int64
	for i := 0; i < slotCount; i++ {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
			moved += c
		}
	}
	if moved == 0 {
		return
	}
	h.total.Add(moved)
	for {
		m := h.min.Load()
		om := o.min.Load()
		if om >= m || h.min.CompareAndSwap(m, om) {
			break
		}
	}
	for {
		m := h.max.Load()
		om := o.max.Load()
		if om <= m || h.max.CompareAndSwap(m, om) {
			break
		}
	}
}

// Clone returns an independent copy of h.
func (h *Histogram) Clone() *Histogram {
	c := New()
	c.Merge(h)
	return c
}

// Reset empties the histogram.
func (h *Histogram) Reset() {
	for i := 0; i < slotCount; i++ {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
}

// Bucket is one non-empty slot of an exported histogram.
type Bucket struct {
	// Lower and Upper bound the slot's value range, [Lower, Upper).
	Lower, Upper int64
	Count        int64
}

// Buckets returns the non-empty slots in ascending value order, for
// reports and serialization.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i := 0; i < slotCount; i++ {
		if c := h.counts[i].Load(); c > 0 {
			lower, upper := slotBounds(i)
			out = append(out, Bucket{Lower: lower, Upper: upper, Count: c})
		}
	}
	return out
}

// Equal reports whether two histograms hold identical slot counts and
// extremes (the merge-associativity property tests use it).
func (h *Histogram) Equal(o *Histogram) bool {
	if h.total.Load() != o.total.Load() ||
		h.min.Load() != o.min.Load() || h.max.Load() != o.max.Load() {
		return false
	}
	for i := 0; i < slotCount; i++ {
		if h.counts[i].Load() != o.counts[i].Load() {
			return false
		}
	}
	return true
}
