package hdr

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"renaissance/internal/stats"
)

func TestSlotRoundTrip(t *testing.T) {
	// Every recorded value must land in a slot whose bounds contain it and
	// whose width respects the resolution guarantee.
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, (1 << 20) + 12345, math.MaxInt64 / 2}
	for _, v := range vals {
		idx := slotFor(v)
		lower, upper := slotBounds(idx)
		if v < lower || v >= upper {
			t.Errorf("value %d mapped to slot %d = [%d, %d)", v, idx, lower, upper)
		}
		if lower >= subBucketCount {
			if width := upper - lower; float64(width) > float64(lower)/float64(subBucketHalf)+1 {
				t.Errorf("slot [%d, %d): width %d exceeds 1/%d of lower bound", lower, upper, width, subBucketHalf)
			}
		}
	}
	// Slots tile the value range: consecutive indices abut.
	for i := 0; i < slotCount-1; i++ {
		_, upper := slotBounds(i)
		lower, _ := slotBounds(i + 1)
		if upper != lower {
			t.Fatalf("slots %d and %d do not abut: upper %d vs lower %d", i, i+1, upper, lower)
		}
	}
}

// TestQuantileVsExactPercentile is the satellite property test: on random
// samples, Quantile must agree with exact stats.Percentile up to the
// documented bucket resolution plus the gap between the neighboring ranked
// samples that linear rank interpolation spans.
func TestQuantileVsExactPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distributions := map[string]func() int64{
		"uniform":   func() int64 { return rng.Int63n(1_000_000) },
		"exp":       func() int64 { return int64(rng.ExpFloat64() * 50_000) },
		"lognormal": func() int64 { return int64(math.Exp(rng.NormFloat64()*2 + 8)) },
		"bimodal": func() int64 {
			if rng.Intn(100) < 95 {
				return 1_000 + rng.Int63n(500)
			}
			return 900_000 + rng.Int63n(100_000)
		},
	}
	quantiles := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}
	for name, draw := range distributions {
		for _, n := range []int{10, 1_000, 50_000} {
			h := New()
			samples := make([]float64, n)
			for i := range samples {
				v := draw()
				samples[i] = float64(v)
				h.Record(v)
			}
			sorted := append([]float64(nil), samples...)
			sort.Float64s(sorted)
			for _, q := range quantiles {
				got := float64(h.Quantile(q))
				exact := stats.Percentile(samples, q)
				// stats.Percentile interpolates between the ranked samples at
				// floor/ceil of q·(n−1); the histogram answers with the
				// nearest-rank sample's slot. Bound the answer by the ranked
				// neighborhood both rules can land in, widened by the bucket
				// resolution.
				pos := q * float64(n-1)
				lo := int(math.Floor(pos)) - 1
				hi := int(math.Ceil(pos)) + 1
				if lo < 0 {
					lo = 0
				}
				if hi > n-1 {
					hi = n - 1
				}
				minOK := sorted[lo] * (1 - 2*MaxRelativeError)
				maxOK := sorted[hi]*(1+2*MaxRelativeError) + 1
				if got < minOK || got > maxOK {
					t.Errorf("%s n=%d q=%g: Quantile=%g outside [%g, %g] (exact percentile %g)",
						name, n, q, got, minOK, maxOK, exact)
				}
			}
		}
	}
}

func TestQuantileBoundaries(t *testing.T) {
	h := New()
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}

	// Single value: every quantile is exact, including q=0 and q=1.
	h.Record(123_456)
	for _, q := range []float64{0, 0.001, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 123_456 {
			t.Errorf("single-value Quantile(%g) = %d, want 123456", q, got)
		}
	}

	// Boundary quantiles return the exact tracked extremes even though the
	// interior uses bucket midpoints.
	rng := rand.New(rand.NewSource(3))
	h = New()
	min, max := int64(math.MaxInt64), int64(0)
	for i := 0; i < 10_000; i++ {
		v := rng.Int63n(5_000_000)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		h.Record(v)
	}
	if got := h.Quantile(0); got != min {
		t.Errorf("Quantile(0) = %d, want exact min %d", got, min)
	}
	if got := h.Quantile(1); got != max {
		t.Errorf("Quantile(1) = %d, want exact max %d", got, max)
	}
	if h.Min() != min || h.Max() != max {
		t.Errorf("Min/Max = %d/%d, want %d/%d", h.Min(), h.Max(), min, max)
	}

	// Negative values clamp to zero rather than corrupting the layout.
	h = New()
	h.Record(-5)
	if h.Quantile(1) != 0 || h.Count() != 1 {
		t.Error("negative record did not clamp to 0")
	}
}

func TestMergeLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Recording two streams into one histogram must equal recording them
	// separately and merging.
	combined, a, b := New(), New(), New()
	for i := 0; i < 20_000; i++ {
		v := int64(rng.ExpFloat64() * 10_000)
		combined.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	merged := a.Clone()
	merged.Merge(b)
	if !merged.Equal(combined) {
		t.Fatal("merge(a, b) differs from recording both streams directly")
	}

	// Associativity and commutativity over three shards.
	shards := []*Histogram{New(), New(), New()}
	for i := 0; i < 9_999; i++ {
		shards[i%3].Record(rng.Int63n(1_000_000))
	}
	left := shards[0].Clone() // (s0+s1)+s2
	left.Merge(shards[1])
	left.Merge(shards[2])
	rest := shards[1].Clone() // s0+(s1+s2)
	rest.Merge(shards[2])
	right := shards[0].Clone()
	right.Merge(rest)
	swapped := shards[2].Clone() // s2+s1+s0
	swapped.Merge(shards[1])
	swapped.Merge(shards[0])
	if !left.Equal(right) || !left.Equal(swapped) {
		t.Fatal("merge is not associative/commutative")
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if left.Quantile(q) != right.Quantile(q) {
			t.Errorf("quantile %g differs across merge orders", q)
		}
	}

	// Merging an empty histogram is a no-op, including on extremes.
	before := left.Clone()
	left.Merge(New())
	left.Merge(nil)
	if !left.Equal(before) {
		t.Error("merging an empty histogram changed the target")
	}
}

func TestConcurrentRecording(t *testing.T) {
	// Many goroutines recording into one histogram must lose nothing; run
	// under -race via RACE_PKGS.
	h := New()
	const workers, perWorker = 8, 5_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("Count = %d, want %d", got, workers*perWorker)
	}
	sum := int64(0)
	for _, b := range h.Buckets() {
		sum += b.Count
	}
	if sum != workers*perWorker {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*perWorker)
	}
}

func TestReset(t *testing.T) {
	h := New()
	h.Record(42)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || len(h.Buckets()) != 0 {
		t.Error("Reset did not empty the histogram")
	}
	h.Record(7)
	if h.Quantile(1) != 7 {
		t.Error("histogram unusable after Reset")
	}
}

func BenchmarkRecord(b *testing.B) {
	h := New()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) & 0xFFFFF)
	}
}

func BenchmarkQuantile(b *testing.B) {
	h := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		h.Record(rng.Int63n(1 << 30))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}
