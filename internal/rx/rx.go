// Package rx implements push-based observable streams in the style of
// RxJava / Reactive Extensions, used by the rx-scrabble benchmark (Table 1:
// "streaming"). An Observable pushes elements to its subscriber; operators
// compose by wrapping the downstream observer. ObserveOn hands elements to
// a scheduler worker, which introduces the cross-thread queueing and
// parking that distinguish Rx pipelines from plain streams.
package rx

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"renaissance/internal/metrics"
	"renaissance/internal/mpsc"
)

// ErrEmpty is returned by blocking terminal operations on empty observables.
var ErrEmpty = errors.New("rx: empty observable")

// An Observer receives the observable protocol. OnNext returns false to
// cancel the subscription (the Rx "dispose" signal, folded into the push
// path for simplicity).
type Observer[T any] struct {
	OnNext     func(T) bool
	OnError    func(error)
	OnComplete func()
}

// Observable is a lazy push stream of T.
type Observable[T any] struct {
	subscribe func(Observer[T])
}

// Create builds an observable from a raw subscribe function. Implementors
// must honor OnNext's cancellation result and call OnComplete or OnError
// exactly once.
func Create[T any](subscribe func(Observer[T])) Observable[T] {
	return Observable[T]{subscribe: subscribe}
}

// FromSlice emits the slice's elements and completes.
func FromSlice[T any](xs []T) Observable[T] {
	return Create(func(o Observer[T]) {
		for _, x := range xs {
			if !o.OnNext(x) {
				return
			}
		}
		o.OnComplete()
	})
}

// Just emits the given elements and completes.
func Just[T any](xs ...T) Observable[T] { return FromSlice(xs) }

// Range emits the ints in [lo, hi).
func Range(lo, hi int) Observable[int] {
	return Create(func(o Observer[int]) {
		for i := lo; i < hi; i++ {
			if !o.OnNext(i) {
				return
			}
		}
		o.OnComplete()
	})
}

// Map transforms each element.
func Map[T, U any](src Observable[T], fn func(T) U) Observable[U] {
	return Create(func(o Observer[U]) {
		src.subscribe(Observer[T]{
			OnNext: func(x T) bool {
				metrics.IncIDynamic()
				return o.OnNext(fn(x))
			},
			OnError:    o.OnError,
			OnComplete: o.OnComplete,
		})
	})
}

// Filter keeps elements satisfying pred.
func Filter[T any](src Observable[T], pred func(T) bool) Observable[T] {
	return Create(func(o Observer[T]) {
		src.subscribe(Observer[T]{
			OnNext: func(x T) bool {
				metrics.IncIDynamic()
				if pred(x) {
					return o.OnNext(x)
				}
				return true
			},
			OnError:    o.OnError,
			OnComplete: o.OnComplete,
		})
	})
}

// FlatMap maps each element to an observable and concatenates the inner
// sequences (concatMap semantics, which is what rx-scrabble's pipeline
// relies on for determinism).
func FlatMap[T, U any](src Observable[T], fn func(T) Observable[U]) Observable[U] {
	return Create(func(o Observer[U]) {
		cancelled := false
		src.subscribe(Observer[T]{
			OnNext: func(x T) bool {
				metrics.IncIDynamic()
				inner := fn(x)
				innerDone := false
				inner.subscribe(Observer[U]{
					OnNext: func(u U) bool {
						if !o.OnNext(u) {
							cancelled = true
							return false
						}
						return true
					},
					OnError: func(err error) {
						cancelled = true
						o.OnError(err)
					},
					OnComplete: func() { innerDone = true },
				})
				return innerDone && !cancelled
			},
			OnError: func(err error) {
				if !cancelled {
					o.OnError(err)
				}
			},
			OnComplete: func() {
				if !cancelled {
					o.OnComplete()
				}
			},
		})
	})
}

// Take emits at most n elements.
func Take[T any](src Observable[T], n int) Observable[T] {
	return Create(func(o Observer[T]) {
		if n <= 0 {
			o.OnComplete()
			return
		}
		remaining := n
		done := false
		src.subscribe(Observer[T]{
			OnNext: func(x T) bool {
				if !o.OnNext(x) {
					done = true
					return false
				}
				remaining--
				if remaining == 0 {
					done = true
					o.OnComplete()
					return false
				}
				return true
			},
			OnError: func(err error) {
				if !done {
					o.OnError(err)
				}
			},
			OnComplete: func() {
				if !done {
					o.OnComplete()
				}
			},
		})
	})
}

// Scan emits the running fold of the source.
func Scan[T, A any](src Observable[T], init A, fn func(A, T) A) Observable[A] {
	return Create(func(o Observer[A]) {
		acc := init
		src.subscribe(Observer[T]{
			OnNext: func(x T) bool {
				metrics.IncIDynamic()
				acc = fn(acc, x)
				return o.OnNext(acc)
			},
			OnError:    o.OnError,
			OnComplete: o.OnComplete,
		})
	})
}

// Reduce emits the final fold of the source as a single element.
func Reduce[T, A any](src Observable[T], init A, fn func(A, T) A) Observable[A] {
	return Create(func(o Observer[A]) {
		acc := init
		src.subscribe(Observer[T]{
			OnNext: func(x T) bool {
				metrics.IncIDynamic()
				acc = fn(acc, x)
				return true
			},
			OnError: o.OnError,
			OnComplete: func() {
				if o.OnNext(acc) {
					o.OnComplete()
				}
			},
		})
	})
}

// Buffer groups consecutive elements into slices of size n (the last buffer
// may be shorter).
func Buffer[T any](src Observable[T], n int) Observable[[]T] {
	return Create(func(o Observer[[]T]) {
		metrics.IncArray()
		buf := make([]T, 0, n)
		cancelled := false
		src.subscribe(Observer[T]{
			OnNext: func(x T) bool {
				buf = append(buf, x)
				if len(buf) == n {
					out := buf
					metrics.IncArray()
					buf = make([]T, 0, n)
					if !o.OnNext(out) {
						cancelled = true
						return false
					}
				}
				return true
			},
			OnError: o.OnError,
			OnComplete: func() {
				if cancelled {
					return
				}
				if len(buf) > 0 && !o.OnNext(buf) {
					return
				}
				o.OnComplete()
			},
		})
	})
}

// Scheduler is a single worker goroutine executing queued actions in order,
// the rx "event loop" scheduler. Its run queue is the same Vyukov MPSC
// mailbox primitive that backs the actor runtime: enqueueing is one atomic
// swap (no channel lock, no backpressure stalls at a fixed channel
// capacity), and the worker drains batches wait-free, parking on a wake
// token when the queue is empty.
type Scheduler struct {
	q      mpsc.Queue[func()]
	parked atomic.Bool
	wake   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewScheduler starts a scheduler worker.
func NewScheduler() *Scheduler {
	s := &Scheduler{wake: make(chan struct{}, 1)}
	s.q.Init(mpsc.NewPool[func()]())
	s.wg.Add(1)
	go s.loop()
	return s
}

func (s *Scheduler) loop() {
	defer s.wg.Done()
	for {
		if fn, ok := s.q.Pop(); ok {
			fn()
			continue
		}
		if !s.q.Empty() {
			// A producer swapped in but has not linked yet.
			runtime.Gosched()
			continue
		}
		if s.closed.Load() {
			return // drained and closed
		}
		// Park protocol: advertise, re-verify, block. A producer either
		// sees parked and leaves a token or enqueued before the recheck.
		s.parked.Store(true)
		if !s.q.Empty() || s.closed.Load() {
			s.parked.Store(false)
			continue
		}
		metrics.IncPark()
		<-s.wake
		s.parked.Store(false)
	}
}

// Schedule enqueues an action. After Close the action is dropped (the
// previous channel-based scheduler panicked on this race).
func (s *Scheduler) Schedule(fn func()) {
	if s.closed.Load() {
		return
	}
	metrics.IncAtomic()
	s.q.Push(fn)
	if s.parked.Load() {
		metrics.IncNotify()
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}

// Close drains and stops the scheduler: actions already enqueued are still
// executed, in order, before Close returns.
func (s *Scheduler) Close() {
	if s.closed.Swap(true) {
		return
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
	s.wg.Wait()
}

// ObserveOn delivers the source's signals on the scheduler's worker. The
// resulting observable does not support cancellation mid-stream (its
// OnNext result is ignored), matching the fire-and-forget delivery of an
// Rx event loop.
func ObserveOn[T any](src Observable[T], s *Scheduler) Observable[T] {
	return Create(func(o Observer[T]) {
		done := make(chan struct{})
		src.subscribe(Observer[T]{
			OnNext: func(x T) bool {
				s.Schedule(func() { o.OnNext(x) })
				return true
			},
			OnError: func(err error) {
				s.Schedule(func() {
					o.OnError(err)
					close(done)
				})
			},
			OnComplete: func() {
				s.Schedule(func() {
					o.OnComplete()
					close(done)
				})
			},
		})
		metrics.IncPark()
		<-done
	})
}

// Subscribe drains the observable, invoking next for each element, and
// returns the terminal error, if any.
func (src Observable[T]) Subscribe(next func(T)) error {
	var err error
	src.subscribe(Observer[T]{
		OnNext: func(x T) bool {
			metrics.IncIDynamic()
			next(x)
			return true
		},
		OnError:    func(e error) { err = e },
		OnComplete: func() {},
	})
	return err
}

// BlockingSlice collects all elements.
func (src Observable[T]) BlockingSlice() ([]T, error) {
	metrics.IncArray()
	var out []T
	err := src.Subscribe(func(x T) { out = append(out, x) })
	return out, err
}

// BlockingFirst returns the first element.
func (src Observable[T]) BlockingFirst() (T, error) {
	var out T
	found := false
	var serr error
	src.subscribe(Observer[T]{
		OnNext: func(x T) bool {
			out, found = x, true
			return false
		},
		OnError:    func(e error) { serr = e },
		OnComplete: func() {},
	})
	if serr != nil {
		return out, serr
	}
	if !found {
		return out, ErrEmpty
	}
	return out, nil
}

// BlockingLast returns the final element.
func (src Observable[T]) BlockingLast() (T, error) {
	var out T
	found := false
	var serr error
	src.subscribe(Observer[T]{
		OnNext: func(x T) bool {
			out, found = x, true
			return true
		},
		OnError:    func(e error) { serr = e },
		OnComplete: func() {},
	})
	if serr != nil {
		return out, serr
	}
	if !found {
		return out, ErrEmpty
	}
	return out, nil
}

// Error returns an observable that immediately fails.
func Error[T any](err error) Observable[T] {
	return Create(func(o Observer[T]) { o.OnError(err) })
}
