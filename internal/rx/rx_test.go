package rx

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestJustAndSubscribe(t *testing.T) {
	var got []int
	err := Just(1, 2, 3).Subscribe(func(x int) { got = append(got, x) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("got %v", got)
	}
}

func TestMapFilterPipeline(t *testing.T) {
	src := Range(0, 10)
	out, err := Map(Filter(src, func(x int) bool { return x%2 == 1 }),
		func(x int) int { return x * x }).BlockingSlice()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []int{1, 9, 25, 49, 81}) {
		t.Errorf("out = %v", out)
	}
}

func TestFlatMap(t *testing.T) {
	out, err := FlatMap(Just("ab", "c"), func(s string) Observable[byte] {
		return FromSlice([]byte(s))
	}).BlockingSlice()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "abc" {
		t.Errorf("out = %q", out)
	}
}

func TestTake(t *testing.T) {
	out, err := Take(Range(0, 1000000), 3).BlockingSlice()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []int{0, 1, 2}) {
		t.Errorf("out = %v", out)
	}
	empty, err := Take(Range(0, 10), 0).BlockingSlice()
	if err != nil || len(empty) != 0 {
		t.Errorf("Take(0) = (%v, %v)", empty, err)
	}
}

func TestTakeShortCircuitsSource(t *testing.T) {
	emitted := 0
	src := Create(func(o Observer[int]) {
		for i := 0; ; i++ {
			emitted++
			if !o.OnNext(i) {
				return
			}
		}
	})
	if _, err := Take(src, 5).BlockingSlice(); err != nil {
		t.Fatal(err)
	}
	if emitted > 6 {
		t.Errorf("source emitted %d elements; Take did not cancel", emitted)
	}
}

func TestScanReduce(t *testing.T) {
	scan, err := Scan(Just(1, 2, 3, 4), 0, func(a, x int) int { return a + x }).BlockingSlice()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scan, []int{1, 3, 6, 10}) {
		t.Errorf("Scan = %v", scan)
	}
	total, err := Reduce(Just(1, 2, 3, 4), 0, func(a, x int) int { return a + x }).BlockingFirst()
	if err != nil || total != 10 {
		t.Errorf("Reduce = (%d, %v)", total, err)
	}
}

func TestBuffer(t *testing.T) {
	bufs, err := Buffer(Range(0, 7), 3).BlockingSlice()
	if err != nil {
		t.Fatal(err)
	}
	if len(bufs) != 3 || len(bufs[0]) != 3 || len(bufs[2]) != 1 {
		t.Errorf("Buffer = %v", bufs)
	}
}

func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(Error[int](boom), func(x int) int { return x }).BlockingSlice()
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	_, err = FlatMap(Just(1), func(int) Observable[int] { return Error[int](boom) }).BlockingSlice()
	if !errors.Is(err, boom) {
		t.Errorf("FlatMap err = %v", err)
	}
}

func TestBlockingFirstLast(t *testing.T) {
	if v, err := Just(5, 6, 7).BlockingFirst(); err != nil || v != 5 {
		t.Errorf("BlockingFirst = (%d, %v)", v, err)
	}
	if v, err := Just(5, 6, 7).BlockingLast(); err != nil || v != 7 {
		t.Errorf("BlockingLast = (%d, %v)", v, err)
	}
	if _, err := Just[int]().BlockingFirst(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty BlockingFirst err = %v", err)
	}
	if _, err := Just[int]().BlockingLast(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty BlockingLast err = %v", err)
	}
}

func TestObserveOn(t *testing.T) {
	s := NewScheduler()
	defer s.Close()
	out, err := ObserveOn(Range(0, 100), s).BlockingSlice()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("len = %d", len(out))
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d; ordering violated across scheduler", i, v)
		}
	}
}

func TestSchedulerCloseIdempotent(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.Schedule(func() { ran = true })
	s.Close()
	s.Close()
	if !ran {
		t.Error("scheduled action did not run before close")
	}
}

// Property: rx pipeline Map∘Filter matches the plain-slice computation.
func TestPropertyPipelineMatchesSlices(t *testing.T) {
	f := func(xs []int8) bool {
		pred := func(x int8) bool { return x%2 == 0 }
		fn := func(x int8) int { return int(x) * 10 }
		got, err := Map(Filter(FromSlice(xs), pred), fn).BlockingSlice()
		if err != nil {
			return false
		}
		var want []int
		for _, x := range xs {
			if pred(x) {
				want = append(want, fn(x))
			}
		}
		return reflect.DeepEqual(got, want) || (len(got) == 0 && len(want) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Schedule racing Close must never panic (the channel-based scheduler could
// send on a closed channel here); late actions are dropped, actions
// enqueued before Close still run in order. Run under -race by `make
// stress`.
func TestSchedulerScheduleCloseRace(t *testing.T) {
	for round := 0; round < 100; round++ {
		s := NewScheduler()
		var ran atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					s.Schedule(func() { ran.Add(1) })
				}
			}()
		}
		close(start)
		s.Close() // races the producers; must not panic
		wg.Wait()
		if ran.Load() > 200 {
			t.Fatalf("ran %d > scheduled 200", ran.Load())
		}
	}
}

// Everything scheduled before Close begins must execute, in order.
func TestSchedulerDrainsInOrderOnClose(t *testing.T) {
	s := NewScheduler()
	const n = 10000
	var order []int
	for i := 0; i < n; i++ {
		i := i
		s.Schedule(func() { order = append(order, i) })
	}
	s.Close()
	if len(order) != n {
		t.Fatalf("ran %d actions, want %d (Close must drain)", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; event-loop ordering violated", i, v)
		}
	}
}
