// Transaction pooling: the zero-allocation steady state.
//
// The seed allocated a fresh Tx, a map[*Ref]any write set, and a read-set
// slice per attempt, then sorted the write set at commit. Here Tx objects
// cycle through a sync.Pool and carry reusable id-sorted vectors, so a
// warmed-up transaction allocates nothing: Atomically's fast path is
// pool-get, vector appends into retained capacity, commit, pool-put.
// Oversized vectors (a one-off giant traversal) are dropped back to nil on
// release so the pool does not pin worst-case capacity forever.
package stm

import (
	"sync"
	"sync/atomic"

	"renaissance/internal/metrics"
)

// maxPooledSet caps the vector capacity a pooled Tx may retain.
const maxPooledSet = 1 << 12

// txSeq seeds each pooled transaction's jitter PRNG; distinct transactions
// draw distinct, deterministic backoff streams.
var txSeq atomic.Uint64

var txPool = sync.Pool{New: func() any {
	return &Tx{rng: txSeq.Add(1)*0x9E3779B97F4A7C15 | 1}
}}

// acquireTx readies a pooled transaction for a new Atomically call.
func acquireTx() *Tx {
	tx := txPool.Get().(*Tx)
	tx.loc = metrics.Acquire()
	tx.Aborts = 0
	tx.Extensions = 0
	return tx
}

// release clears the transaction (dropping references so pooled vectors do
// not pin user values or refs) and returns it to the pool.
func (tx *Tx) release() {
	tx.clearSets()
	if cap(tx.reads) > maxPooledSet {
		tx.reads = nil
	}
	if cap(tx.writes) > maxPooledSet {
		tx.writes = nil
	}
	tx.loc = metrics.Local{}
	txPool.Put(tx)
}

// clearSets empties the read and write vectors, zeroing entries so stale
// refs and values are not retained across reuse.
func (tx *Tx) clearSets() {
	for i := range tx.reads {
		tx.reads[i] = readEntry{}
	}
	tx.reads = tx.reads[:0]
	for i := range tx.writes {
		tx.writes[i] = writeEntry{}
	}
	tx.writes = tx.writes[:0]
}
