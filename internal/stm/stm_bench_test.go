package stm

// Seed-vs-new benchmark pairs behind `make bench` (teed to BENCH_stm.txt).
// Each pair duplicates the workload loop rather than abstracting over a
// shared interface: an interface call on the hot path would hide exactly
// the dispatch and boxing costs the comparison is meant to expose.
//
//   CommitNoWaiters            — 2-read/2-write transfer, no Retry waiters
//   RetryWakeup                — two-goroutine Retry ping-pong (wakeup latency)
//   ReadOnlyTraversalUnderWrites — long read-only scan with background writers
//   PhilosophersE2E            — dining philosophers, contended fork acquisition
//   STMBench7E2E               — mixed traversal/update over a flat ref array
//
// New-path values stay below 256 so integer stores hit the runtime's static
// box and the commit path is observably zero-alloc (-benchmem).

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// --- CommitNoWaiters -------------------------------------------------------

func BenchmarkCommitNoWaiters(b *testing.B) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		src := NewRef(100)
		dst := NewRef(0)
		for pb.Next() {
			_ = Atomically(func(tx *Tx) error {
				s := tx.Read(src).(int)
				d := tx.Read(dst).(int)
				tx.Write(src, (s-1)&0xff)
				tx.Write(dst, (d+1)&0xff)
				return nil
			})
		}
	})
}

func BenchmarkCommitNoWaitersSeed(b *testing.B) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		src := newSeedRef(100)
		dst := newSeedRef(0)
		for pb.Next() {
			_ = seedAtomically(func(tx *seedTx) error {
				s := tx.read(src).(int)
				d := tx.read(dst).(int)
				tx.write(src, (s-1)&0xff)
				tx.write(dst, (d+1)&0xff)
				return nil
			})
		}
	})
}

// --- RetryWakeup -----------------------------------------------------------

// One round trip: the consumer Retry-waits for flag!=0, clears it, and the
// producer sets it again. Measures commit→wakeup→re-run latency.
func BenchmarkRetryWakeup(b *testing.B) {
	b.ReportAllocs()
	flag := NewRef(0)
	done := NewRef(false)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			stop := false
			_ = Atomically(func(tx *Tx) error {
				if tx.Read(done).(bool) {
					stop = true
					return nil
				}
				if tx.Read(flag).(int) == 0 {
					tx.Retry()
				}
				tx.Write(flag, 0)
				return nil
			})
			if stop {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WriteAtomic(flag, 1)
		for ReadAtomic(flag).(int) != 0 {
			runtime.Gosched()
		}
	}
	b.StopTimer()
	_ = Atomically(func(tx *Tx) error {
		tx.Write(done, true)
		tx.Write(flag, 1)
		return nil
	})
	wg.Wait()
}

func BenchmarkRetryWakeupSeed(b *testing.B) {
	b.ReportAllocs()
	flag := newSeedRef(0)
	done := newSeedRef(false)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			stop := false
			_ = seedAtomically(func(tx *seedTx) error {
				if tx.read(done).(bool) {
					stop = true
					return nil
				}
				if tx.read(flag).(int) == 0 {
					tx.retry()
				}
				tx.write(flag, 0)
				return nil
			})
			if stop {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seedWriteAtomic(flag, 1)
		for seedReadAtomic(flag).(int) != 0 {
			runtime.Gosched()
		}
	}
	b.StopTimer()
	_ = seedAtomically(func(tx *seedTx) error {
		tx.write(done, true)
		tx.write(flag, 1)
		return nil
	})
	wg.Wait()
}

// --- ReadOnlyTraversalUnderWrites ------------------------------------------

const (
	benchTraversalRefs  = 64
	benchTraversalQuiet = 48 // writers only touch refs [quiet, refs)
)

// Background writers transfer between the tail refs while the benchmark
// loop scans all of them in one read-only transaction. The new path leans
// on timestamp extension to finish the scan; the seed path aborts and
// restarts from scratch whenever the clock moves past its read version.
// Writers yield every transfer so the seed variant still terminates.
func BenchmarkReadOnlyTraversalUnderWrites(b *testing.B) {
	b.ReportAllocs()
	refs := make([]*Ref, benchTraversalRefs)
	for i := range refs {
		refs[i] = NewRef(10)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := benchTraversalQuiet + w
			for !stop.Load() {
				j := benchTraversalQuiet + (i-benchTraversalQuiet+1)%(benchTraversalRefs-benchTraversalQuiet)
				a, c := refs[i], refs[j]
				_ = Atomically(func(tx *Tx) error {
					av := tx.Read(a).(int)
					cv := tx.Read(c).(int)
					tx.Write(a, (av-1)&0xff)
					tx.Write(c, (cv+1)&0xff)
					return nil
				})
				i = j
				runtime.Gosched()
			}
		}(w)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0
		_ = Atomically(func(tx *Tx) error {
			sum = 0
			for _, r := range refs {
				sum += tx.Read(r).(int)
			}
			return nil
		})
		_ = sum
	}
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
}

func BenchmarkReadOnlyTraversalUnderWritesSeed(b *testing.B) {
	b.ReportAllocs()
	refs := make([]*seedRef, benchTraversalRefs)
	for i := range refs {
		refs[i] = newSeedRef(10)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := benchTraversalQuiet + w
			for !stop.Load() {
				j := benchTraversalQuiet + (i-benchTraversalQuiet+1)%(benchTraversalRefs-benchTraversalQuiet)
				a, c := refs[i], refs[j]
				_ = seedAtomically(func(tx *seedTx) error {
					av := tx.read(a).(int)
					cv := tx.read(c).(int)
					tx.write(a, (av-1)&0xff)
					tx.write(c, (cv+1)&0xff)
					return nil
				})
				i = j
				runtime.Gosched()
			}
		}(w)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0
		_ = seedAtomically(func(tx *seedTx) error {
			sum = 0
			for _, r := range refs {
				sum += tx.read(r).(int)
			}
			return nil
		})
		_ = sum
	}
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
}

// --- PhilosophersE2E -------------------------------------------------------

const benchPhilosophers = 8

// One op = one philosopher acquiring both forks (Retry if taken), "eating"
// by bumping a counter, and releasing. Stresses Retry under real conflict.
func BenchmarkPhilosophersE2E(b *testing.B) {
	b.ReportAllocs()
	forks := make([]*Ref, benchPhilosophers)
	for i := range forks {
		forks[i] = NewRef(false)
	}
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		seat := int(next.Add(1)-1) % benchPhilosophers
		left, right := forks[seat], forks[(seat+1)%benchPhilosophers]
		meals := 0
		for pb.Next() {
			_ = Atomically(func(tx *Tx) error {
				if tx.Read(left).(bool) || tx.Read(right).(bool) {
					tx.Retry()
				}
				tx.Write(left, true)
				tx.Write(right, true)
				return nil
			})
			meals++
			_ = Atomically(func(tx *Tx) error {
				tx.Write(left, false)
				tx.Write(right, false)
				return nil
			})
		}
		_ = meals
	})
}

func BenchmarkPhilosophersE2ESeed(b *testing.B) {
	b.ReportAllocs()
	forks := make([]*seedRef, benchPhilosophers)
	for i := range forks {
		forks[i] = newSeedRef(false)
	}
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		seat := int(next.Add(1)-1) % benchPhilosophers
		left, right := forks[seat], forks[(seat+1)%benchPhilosophers]
		meals := 0
		for pb.Next() {
			_ = seedAtomically(func(tx *seedTx) error {
				if tx.read(left).(bool) || tx.read(right).(bool) {
					tx.retry()
				}
				tx.write(left, true)
				tx.write(right, true)
				return nil
			})
			meals++
			_ = seedAtomically(func(tx *seedTx) error {
				tx.write(left, false)
				tx.write(right, false)
				return nil
			})
		}
		_ = meals
	})
}

// --- STMBench7E2E ----------------------------------------------------------

const benchSBRefs = 128

// Flattened stm-bench7 mix over a ref array: 25% full read-only traversal,
// 75% short two-ref transfer, operation chosen by a per-goroutine LCG.
func BenchmarkSTMBench7E2E(b *testing.B) {
	b.ReportAllocs()
	refs := make([]*Ref, benchSBRefs)
	for i := range refs {
		refs[i] = NewRef(100)
	}
	var seq atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		rng := seq.Add(1)*0x9E3779B97F4A7C15 | 1
		for pb.Next() {
			rng = rng*6364136223846793005 + 1442695040888963407
			op := (rng >> 33) % 100
			if op < 25 {
				sum := 0
				_ = Atomically(func(tx *Tx) error {
					sum = 0
					for _, r := range refs {
						sum += tx.Read(r).(int)
					}
					return nil
				})
				_ = sum
			} else {
				i := int((rng >> 13) % benchSBRefs)
				j := (i + 1) % benchSBRefs
				a, c := refs[i], refs[j]
				_ = Atomically(func(tx *Tx) error {
					av := tx.Read(a).(int)
					cv := tx.Read(c).(int)
					tx.Write(a, (av-1)&0xff)
					tx.Write(c, (cv+1)&0xff)
					return nil
				})
			}
		}
	})
}

func BenchmarkSTMBench7E2ESeed(b *testing.B) {
	b.ReportAllocs()
	refs := make([]*seedRef, benchSBRefs)
	for i := range refs {
		refs[i] = newSeedRef(100)
	}
	var seq atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		rng := seq.Add(1)*0x9E3779B97F4A7C15 | 1
		for pb.Next() {
			rng = rng*6364136223846793005 + 1442695040888963407
			op := (rng >> 33) % 100
			if op < 25 {
				sum := 0
				_ = seedAtomically(func(tx *seedTx) error {
					sum = 0
					for _, r := range refs {
						sum += tx.read(r).(int)
					}
					return nil
				})
				_ = sum
			} else {
				i := int((rng >> 13) % benchSBRefs)
				j := (i + 1) % benchSBRefs
				a, c := refs[i], refs[j]
				_ = seedAtomically(func(tx *seedTx) error {
					av := tx.read(a).(int)
					cv := tx.read(c).(int)
					tx.write(a, (av-1)&0xff)
					tx.write(c, (cv+1)&0xff)
					return nil
				})
			}
		}
	})
}
