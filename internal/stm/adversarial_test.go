// Adversarial suite for the STM fast paths: lost-wakeup races on the
// per-ref waiter table, opacity (zombie transactions must never observe an
// inconsistent snapshot), timestamp-extension correctness against a
// coarse-global-lock reference, dropped-wakeup degradation under chaos,
// and the bounded-spin ReadAtomic regression. Wired into `make stress`
// (-race -count=5) via the Wakeup/Opacity/Extension/Racing name patterns.
package stm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"renaissance/internal/chaos"
	"renaissance/internal/metrics"
)

// TestCommitRacingRetryRegistration hammers the exact window the per-ref
// waiter protocol must close: a commit publishing while a Retry-er is
// mid-registration. Every round spawns a waiter on a fresh ref and commits
// the wakeup value immediately, so the commit races registration; a lost
// wakeup shows up as a timeout.
func TestCommitRacingRetryRegistration(t *testing.T) {
	rounds := 500
	if testing.Short() {
		rounds = 50
	}
	for round := 0; round < rounds; round++ {
		flag := NewRef(false)
		done := make(chan struct{})
		go func() {
			_ = Atomically(func(tx *Tx) error {
				if !tx.Read(flag).(bool) {
					tx.Retry()
				}
				return nil
			})
			close(done)
		}()
		WriteAtomic(flag, true)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: retry-er never woke (lost wakeup)", round)
		}
	}
	waitForNoWaiters(t)
}

// TestRetryWakeupPingPong bounces a token between two guarded blocks for
// many rounds: sustained commit-vs-registration traffic in both
// directions, each wakeup targeted at exactly one parked waiter.
func TestRetryWakeupPingPong(t *testing.T) {
	rounds := 300
	if testing.Short() {
		rounds = 30
	}
	token := NewRef(0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			want := 2*i + 1
			_ = Atomically(func(tx *Tx) error {
				if tx.Read(token).(int) != want {
					tx.Retry()
				}
				tx.Write(token, want+1)
				return nil
			})
		}
	}()
	for i := 0; i < rounds; i++ {
		WriteAtomic(token, 2*i+1)
		want := 2*i + 2
		_ = Atomically(func(tx *Tx) error {
			if tx.Read(token).(int) != want {
				tx.Retry()
			}
			return nil
		})
	}
	wg.Wait()
	if got := ReadAtomic(token).(int); got != 2*rounds {
		t.Fatalf("token = %d, want %d", got, 2*rounds)
	}
	waitForNoWaiters(t)
}

// waitForNoWaiters asserts the waiter population drains back to zero (no
// leaked registrations keeping the waiter-free commit fast path disabled).
func waitForNoWaiters(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for waitingCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("waiter count stuck at %d", waitingCount())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOpacityZombieNeverSeesBrokenInvariant is the opacity check: the
// stm-bench7 sum invariant must hold for every observation made *inside* a
// transaction body — including bodies that are doomed to abort (zombies) —
// not just for committed results. A violation inside the body is recorded
// before the STM gets a chance to abort the attempt.
func TestOpacityZombieNeverSeesBrokenInvariant(t *testing.T) {
	const nRefs = 16
	const initial = 100
	refs := make([]*Ref, nRefs)
	for i := range refs {
		refs[i] = NewRef(initial)
	}
	var violations atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = Atomically(func(tx *Tx) error {
					sum := 0
					for _, ref := range refs {
						sum += tx.Read(ref).(int)
					}
					if sum != nRefs*initial {
						violations.Add(1)
					}
					return nil
				})
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			state := uint64(w + 1)
			next := func(bound int) int {
				state = state*6364136223846793005 + 1442695040888963407
				return int((state >> 33) % uint64(bound))
			}
			for i := 0; i < 2000; i++ {
				a, b := next(nRefs), next(nRefs)
				if a == b {
					continue
				}
				_ = Atomically(func(tx *Tx) error {
					av := tx.Read(refs[a]).(int)
					bv := tx.Read(refs[b]).(int)
					tx.Write(refs[a], av-3)
					tx.Write(refs[b], bv+3)
					return nil
				})
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d in-body invariant violations (opacity broken)", v)
	}
}

// TestTimestampExtensionAllowsStaleRead pins the extension rule: a read
// that observes a version newer than the transaction's timestamp succeeds
// without aborting when the rest of the read set is unchanged.
func TestTimestampExtensionAllowsStaleRead(t *testing.T) {
	a := NewRef(1)
	b := NewRef(2)
	var extensions, aborts int
	if err := Atomically(func(tx *Tx) error {
		if tx.Read(a).(int) != 1 {
			t.Error("unexpected a")
		}
		if tx.Aborts == 0 {
			// Bump b's version past our read timestamp with an
			// independent committed transaction.
			WriteAtomic(b, 3)
		}
		if got := tx.Read(b).(int); got != 3 {
			t.Errorf("b = %d, want 3 (post-extension value)", got)
		}
		extensions, aborts = tx.Extensions, tx.Aborts
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if extensions != 1 || aborts != 0 {
		t.Fatalf("extensions = %d, aborts = %d; want 1 extension on the first attempt", extensions, aborts)
	}
}

// TestTimestampExtensionRefusesChangedRead pins the converse: when a ref
// already in the read set has changed, extension must fail and the attempt
// must abort rather than serve a mixed snapshot.
func TestTimestampExtensionRefusesChangedRead(t *testing.T) {
	a := NewRef(1)
	b := NewRef(2)
	first := true
	var finalA int
	if err := Atomically(func(tx *Tx) error {
		av := tx.Read(a).(int)
		if first {
			first = false
			WriteAtomic(a, 10) // invalidates the read we just made
			WriteAtomic(b, 20) // and bumps b past our timestamp
		}
		bv := tx.Read(b).(int) // must not see (a=1, b=20)
		if av == 1 && bv == 20 {
			t.Error("observed mixed snapshot across a failed extension")
		}
		finalA = av
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if finalA != 10 {
		t.Fatalf("final attempt read a = %d, want 10", finalA)
	}
}

// TestDifferentialExtensionVsGlobalLockReference is the differential
// property test: a random transfer schedule executed concurrently on the
// TL2 STM (with traversals forcing timestamp extensions) must land in
// exactly the state the coarse-global-lock reference STM computes for the
// same ops — transfer effects commute, so the final state is
// schedule-independent.
func TestDifferentialExtensionVsGlobalLockReference(t *testing.T) {
	type op struct {
		From, To uint8
		Amount   uint8
	}
	const nRefs = 24
	const initial = 1000
	const workers = 4
	f := func(ops []op) bool {
		refs := make([]*Ref, nRefs)
		for i := range refs {
			refs[i] = NewRef(initial)
		}
		ref := newGLSTM(nRefs, initial)

		// Partition the schedule across workers; run the same partitions
		// on both STMs (the reference serializes via its global lock).
		var wg, traversals sync.WaitGroup
		stop := make(chan struct{})
		traversals.Add(1)
		go func() { // traversal pressure: long read-only scans, extensions on
			defer traversals.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = Atomically(func(tx *Tx) error {
					sum := 0
					for _, r := range refs {
						sum += tx.Read(r).(int)
					}
					if sum != nRefs*initial {
						t.Errorf("traversal sum = %d, want %d", sum, nRefs*initial)
					}
					return nil
				})
			}
		}()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(ops); i += workers {
					o := ops[i]
					from, to := int(o.From%nRefs), int(o.To%nRefs)
					amount := int(o.Amount % 50)
					if from == to {
						continue
					}
					_ = Atomically(func(tx *Tx) error {
						f := tx.Read(refs[from]).(int)
						tv := tx.Read(refs[to]).(int)
						tx.Write(refs[from], f-amount)
						tx.Write(refs[to], tv+amount)
						return nil
					})
					ref.atomically(func(vals []int) {
						vals[from] -= amount
						vals[to] += amount
					})
				}
			}(w)
		}
		wg.Wait()
		close(stop)
		traversals.Wait()

		want := ref.snapshot()
		for i := range refs {
			if got := ReadAtomic(refs[i]).(int); got != want[i] {
				t.Errorf("ref %d = %d, reference STM has %d", i, got, want[i])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestLongTraversalExtensionUnderWrites is the livelock acceptance test:
// a long read-only traversal (reading every ref, yielding between reads so
// short transfers land mid-traversal) must complete against sustained
// write traffic — plain TL2 would abort every time the clock moves, the
// extension rule lets the traversal carry its validated prefix forward.
func TestLongTraversalExtensionUnderWrites(t *testing.T) {
	const quiet = 48 // refs the writers never touch, read first
	const busy = 16  // refs under constant transfer load, read second
	refs := make([]*Ref, quiet+busy)
	for i := range refs {
		refs[i] = NewRef(100)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			state := uint64(w + 7)
			next := func(bound int) int {
				state = state*6364136223846793005 + 1442695040888963407
				return int((state >> 33) % uint64(bound))
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a, b := quiet+next(busy), quiet+next(busy)
				if a == b {
					continue
				}
				_ = Atomically(func(tx *Tx) error {
					av := tx.Read(refs[a]).(int)
					bv := tx.Read(refs[b]).(int)
					tx.Write(refs[a], av-1)
					tx.Write(refs[b], bv+1)
					return nil
				})
				if i%8 == 7 {
					time.Sleep(200 * time.Microsecond) // sustained, not saturating
				}
			}
		}(w)
	}

	extBefore := metrics.Default.Get(metrics.StmExtend)
	deadline := time.After(20 * time.Second)
	done := make(chan int, 1)
	go func() {
		sum := 0
		_ = Atomically(func(tx *Tx) error {
			sum = 0
			for i, r := range refs {
				sum += tx.Read(r).(int)
				if i%16 == 15 {
					runtime.Gosched() // invite concurrent commits mid-scan
				}
			}
			return nil
		})
		done <- sum
	}()
	select {
	case sum := <-done:
		if sum != len(refs)*100 {
			t.Fatalf("traversal sum = %d, want %d", sum, len(refs)*100)
		}
	case <-deadline:
		t.Fatal("long read-only traversal livelocked under write load")
	}
	close(stop)
	wg.Wait()
	if metrics.Default.Get(metrics.StmExtend) == extBefore {
		t.Log("note: traversal completed without needing an extension (low contention run)")
	}
}

// TestChaosDroppedWakeupStillMakesProgress drives the stm.wake injection
// point at rate 1 — every waiter signal is dropped — and requires the
// guarded-block traffic to complete anyway via periodic revalidation:
// dropped wakeups must degrade to latency, never to a hang.
func TestChaosDroppedWakeupStillMakesProgress(t *testing.T) {
	chaos.SetRate("stm.wake", 1)
	defer chaos.Configure(0, 0)

	rounds := 100
	if testing.Short() {
		rounds = 20
	}
	token := NewRef(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < rounds; i++ {
			want := 2*i + 1
			_ = Atomically(func(tx *Tx) error {
				if tx.Read(token).(int) != want {
					tx.Retry()
				}
				tx.Write(token, want+1)
				return nil
			})
		}
	}()
	for i := 0; i < rounds; i++ {
		WriteAtomic(token, 2*i+1)
		want := 2*i + 2
		_ = Atomically(func(tx *Tx) error {
			if tx.Read(token).(int) != want {
				tx.Retry()
			}
			return nil
		})
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("progress lost under dropped wakeups")
	}
	if chaos.FireCount("stm.wake") == 0 {
		t.Fatal("stm.wake never fired; the dropped-wakeup path was not exercised")
	}
	waitForNoWaiters(t)
}

// TestReadAtomicBoundedSpinWhileLocked is the regression test for the
// seed's unbounded busy-spin: a reader that hits a write-locked ref must
// fall back to yielding (park metric) instead of spinning hot, and must
// complete once the lock is released.
func TestReadAtomicBoundedSpinWhileLocked(t *testing.T) {
	r := NewRef(42)
	s := r.state.Load()
	r.state.Store(s | 1) // hold the write lock across a parked reader

	parkBefore := metrics.Default.Get(metrics.Park)
	done := make(chan any, 1)
	go func() { done <- ReadAtomic(r) }()

	time.Sleep(20 * time.Millisecond)
	select {
	case v := <-done:
		t.Fatalf("ReadAtomic returned %v while the ref was locked", v)
	default:
	}
	if got := metrics.Default.Get(metrics.Park); got <= parkBefore {
		t.Error("locked-out reader never yielded (park metric flat)")
	}

	r.state.Store(s) // release at the old version
	select {
	case v := <-done:
		if v.(int) != 42 {
			t.Fatalf("ReadAtomic = %v, want 42", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader never completed after unlock")
	}
}

// TestPooledTxZeroAllocSteadyState is the acceptance assertion for the
// allocation-free fast path: a warmed-up read-write transaction (two
// reads, two writes, waiter-free commit) performs zero heap allocations.
// Values are small ints, which the runtime boxes statically.
func TestPooledTxZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	a := NewRef(1)
	b := NewRef(2)
	body := func(tx *Tx) error {
		av := tx.Read(a).(int)
		bv := tx.Read(b).(int)
		tx.Write(a, bv&0xff)
		tx.Write(b, av&0xff)
		return nil
	}
	// Warm the pool and the vectors.
	for i := 0; i < 100; i++ {
		_ = Atomically(body)
	}
	if avg := testing.AllocsPerRun(1000, func() { _ = Atomically(body) }); avg != 0 {
		t.Fatalf("waiter-free read-write commit allocates %.2f objects/op, want 0", avg)
	}
}
