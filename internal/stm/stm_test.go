package stm

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestReadWriteRoundTrip(t *testing.T) {
	r := NewRef(10)
	err := Atomically(func(tx *Tx) error {
		v := tx.Read(r).(int)
		tx.Write(r, v+5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ReadAtomic(r).(int); got != 15 {
		t.Errorf("value = %d, want 15", got)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	r := NewRef(1)
	_ = Atomically(func(tx *Tx) error {
		tx.Write(r, 2)
		if got := tx.Read(r).(int); got != 2 {
			t.Errorf("read-own-write = %d, want 2", got)
		}
		return nil
	})
}

func TestErrorRollsBack(t *testing.T) {
	r := NewRef(100)
	wantErr := errors.New("nope")
	err := Atomically(func(tx *Tx) error {
		tx.Write(r, 999)
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if got := ReadAtomic(r).(int); got != 100 {
		t.Errorf("value after rollback = %d, want 100", got)
	}
}

func TestWriteAtomic(t *testing.T) {
	r := NewRef("a")
	WriteAtomic(r, "b")
	if got := ReadAtomic(r); got != "b" {
		t.Errorf("value = %v, want b", got)
	}
}

// TestCounterConcurrency is the canonical lost-update test: concurrent
// increments must all be preserved.
func TestCounterConcurrency(t *testing.T) {
	counter := NewRef(0)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				_ = Atomically(func(tx *Tx) error {
					tx.Write(counter, tx.Read(counter).(int)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if got := ReadAtomic(counter).(int); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestInvariantTransfers: concurrent transfers between accounts preserve
// the total — atomicity across multiple refs.
func TestInvariantTransfers(t *testing.T) {
	const accounts = 10
	const initial = 1000
	refs := make([]*Ref, accounts)
	for i := range refs {
		refs[i] = NewRef(initial)
	}

	stop := make(chan struct{})
	var checkers sync.WaitGroup
	checkers.Add(1)
	go func() {
		defer checkers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			total := 0
			_ = Atomically(func(tx *Tx) error {
				total = 0
				for _, r := range refs {
					total += tx.Read(r).(int)
				}
				return nil
			})
			if total != accounts*initial {
				t.Errorf("observed total %d, want %d", total, accounts*initial)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				from := (w + i) % accounts
				to := (w + i + 3) % accounts
				if from == to {
					continue
				}
				_ = Atomically(func(tx *Tx) error {
					f := tx.Read(refs[from]).(int)
					tVal := tx.Read(refs[to]).(int)
					tx.Write(refs[from], f-1)
					tx.Write(refs[to], tVal+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	checkers.Wait()

	total := 0
	for _, r := range refs {
		total += ReadAtomic(r).(int)
	}
	if total != accounts*initial {
		t.Errorf("final total = %d, want %d", total, accounts*initial)
	}
}

func TestRetryBlocksUntilCommit(t *testing.T) {
	flag := NewRef(false)
	done := make(chan struct{})
	go func() {
		_ = Atomically(func(tx *Tx) error {
			if !tx.Read(flag).(bool) {
				tx.Retry()
			}
			return nil
		})
		close(done)
	}()

	select {
	case <-done:
		t.Fatal("transaction completed before flag was set")
	case <-time.After(50 * time.Millisecond):
	}

	WriteAtomic(flag, true)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("retry never woke up")
	}
}

func TestClockAdvances(t *testing.T) {
	before := Clock()
	r := NewRef(0)
	WriteAtomic(r, 1)
	if Clock() <= before {
		t.Errorf("clock did not advance: %d -> %d", before, Clock())
	}
}

func TestReadOnlyTransactionConsistency(t *testing.T) {
	a := NewRef(1)
	b := NewRef(-1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 2; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := i
			_ = Atomically(func(tx *Tx) error {
				tx.Write(a, v)
				tx.Write(b, -v)
				return nil
			})
		}
	}()
	for i := 0; i < 500; i++ {
		var sum int
		_ = Atomically(func(tx *Tx) error {
			sum = tx.Read(a).(int) + tx.Read(b).(int)
			return nil
		})
		if sum != 0 {
			t.Fatalf("inconsistent snapshot: sum = %d", sum)
		}
	}
	close(stop)
	wg.Wait()
}

func TestUserPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("user panic swallowed")
		}
	}()
	_ = Atomically(func(tx *Tx) error {
		panic("user bug")
	})
}

// Property: applying a random sequence of transactional transfers matches
// a sequential model, and concurrent random transfer workloads preserve
// the conservation invariant for arbitrary operation mixes.
func TestPropertyTransfersMatchModel(t *testing.T) {
	type op struct {
		From, To uint8
		Amount   uint8
	}
	f := func(ops []op) bool {
		const n = 8
		refs := make([]*Ref, n)
		model := make([]int, n)
		for i := range refs {
			refs[i] = NewRef(100)
			model[i] = 100
		}
		for _, o := range ops {
			from, to := int(o.From%n), int(o.To%n)
			amount := int(o.Amount % 50)
			_ = Atomically(func(tx *Tx) error {
				f := tx.Read(refs[from]).(int)
				tv := tx.Read(refs[to]).(int)
				tx.Write(refs[from], f-amount)
				tx.Write(refs[to], tv+amount)
				return nil
			})
			model[from] -= amount
			model[to] += amount
			if from == to {
				// Self-transfer: the final write wins, so the model must
				// mirror read-your-own-writes semantics.
				model[from] = model[from] + amount // net zero
			}
		}
		for i := range refs {
			if ReadAtomic(refs[i]).(int) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
