package stm

import "sync"

// glSTM is the coarse-global-lock reference STM used by the differential
// property tests: one mutex serializes every "transaction", which makes it
// trivially opaque and serializable — the oracle the TL2 fast paths
// (timestamp extension included) are checked against.
type glSTM struct {
	mu   sync.Mutex
	vals []int
}

func newGLSTM(n, initial int) *glSTM {
	g := &glSTM{vals: make([]int, n)}
	for i := range g.vals {
		g.vals[i] = initial
	}
	return g
}

// atomically runs fn with exclusive access to every cell.
func (g *glSTM) atomically(fn func(vals []int)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	fn(g.vals)
}

func (g *glSTM) snapshot() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int, len(g.vals))
	copy(out, g.vals)
	return out
}
