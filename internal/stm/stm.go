// Package stm implements a TL2-style software transactional memory in the
// spirit of ScalaSTM (Bronson et al.), used by the philosophers and
// stm-bench7 benchmarks (Table 1: "STM, atomics, guarded blocks").
//
// Each transactional reference carries a versioned lock word manipulated
// with compare-and-swap; transactions keep read and write sets, validate
// reads against a global version clock, and commit by locking the write set
// in a canonical order. Retry implements the guarded-block pattern: a
// transaction that calls Retry blocks until another transaction commits to
// one of the refs it read, which maps onto the paper's wait/notify metrics.
//
// # Fast paths (DESIGN.md §12)
//
// The common transaction is allocation-free and uncontended:
//
//   - Tx objects are pooled; the read set and write set are reusable
//     vectors, not maps. The write set is kept id-sorted by insertion
//     (linear scan for small sets, binary search beyond), which also gives
//     the deadlock-free canonical lock order at commit with no per-commit
//     sort.
//   - Ref values are stored directly in an atomic.Value with no wrapper
//     box, so a commit's publish step performs no heap allocation. This
//     makes refs type-stable: every value stored in one Ref must have the
//     same concrete type (atomic.Value's rule). Use a small named struct
//     type if a ref must hold varying payloads.
//   - Retry parks on a per-ref waiter table (waiters.go), not a global
//     broadcast channel, and a committing transaction checks a single
//     "no waiters anywhere" atomic before doing any notification work, so
//     the overwhelmingly common waiter-free commit performs zero channel
//     and zero mutex operations.
//
// # Contention management
//
// Conflict aborts back off exponentially (bounded, seeded jitter); commit
// lock acquisition spins a bounded number of times before aborting rather
// than spinning on a locked ref forever; and a read that observes a version
// newer than the transaction's read timestamp attempts a TL2 timestamp
// extension — revalidating the read set against the current clock — instead
// of aborting, so long read-only traversals survive concurrent short
// writers instead of livelocking.
//
// Contention notes: the global version clock lives on its own cache line so
// that commit-time fetch-adds do not false-share with neighbouring package
// state, and it is only advanced by read-write commits — read-only
// transactions observe it but never write it. Each transaction acquires a
// shard-pinned metrics.Local once, so per-operation instrumentation is a
// single uncontended atomic add, and no metric bump happens while any lock
// is held.
package stm

import (
	"errors"
	"runtime"
	"sync/atomic"
	"time"

	"renaissance/internal/chaos"
	"renaissance/internal/metrics"
)

// globalClock is the TL2 global version clock, padded to a cache line of
// its own: every read-write commit fetch-adds it, and sharing a line with
// other hot package state would couple their costs.
var globalClock struct {
	_ [64]byte
	v atomic.Int64
	_ [56]byte
}

// refIDs allocates unique reference identities for deadlock-free lock
// ordering at commit time and for waiter-table striping.
var refIDs atomic.Uint64

// Spin and backoff bounds of the contention manager.
const (
	// readSpinLimit bounds how long Tx.Read spins on a write-locked ref
	// before aborting the attempt (the lock holder is about to publish a
	// conflicting version anyway).
	readSpinLimit = 64
	// commitSpinLimit bounds the spin-then-abort loop when commit lock
	// acquisition hits a locked ref.
	commitSpinLimit = 32
	// readAtomicSpinLimit bounds ReadAtomic's seqlock retry before it
	// starts yielding the processor between attempts.
	readAtomicSpinLimit = 32
	// backoffSpinAborts conflict aborts are absorbed with a bare yield
	// before the exponential sleep backoff engages.
	backoffSpinAborts = 2
	// backoffMaxShift caps the backoff window at 2^backoffMaxShift µs.
	backoffMaxShift = 7
)

// A Ref is a transactional memory cell. The zero value is not usable;
// create refs with NewRef. Refs are type-stable: every value stored in a
// given Ref must have the same concrete type as the initial value.
type Ref struct {
	id uint64
	// state packs (version << 1) | lockedBit.
	state atomic.Int64
	value atomic.Value
}

// nilValue stands in for an untyped nil inside the atomic.Value (which
// rejects nil); it round-trips through boxNil/unboxNil.
type nilValue struct{}

func boxNil(v any) any {
	if v == nil {
		return nilValue{}
	}
	return v
}

func unboxNil(v any) any {
	if _, isNil := v.(nilValue); isNil {
		return nil
	}
	return v
}

// NewRef creates a transactional reference holding the initial value.
func NewRef(initial any) *Ref {
	metrics.IncObject()
	r := &Ref{id: refIDs.Add(1)}
	r.value.Store(boxNil(initial))
	return r
}

func (r *Ref) loadState(loc metrics.Local) int64 {
	loc.IncAtomic()
	return r.state.Load()
}

func stateVersion(s int64) int64 { return s >> 1 }
func stateLocked(s int64) bool   { return s&1 == 1 }

// spinLock acquires the ref's versioned lock, spinning a bounded number of
// times when the ref is already locked (the holder is mid-publish and will
// release quickly); past the bound it gives up so the caller can abort and
// back off instead of convoying.
func (r *Ref) spinLock(loc metrics.Local) (prev int64, ok bool) {
	for spin := 0; spin < commitSpinLimit; spin++ {
		s := r.loadState(loc)
		if !stateLocked(s) {
			loc.IncAtomic()
			if r.state.CompareAndSwap(s, s|1) {
				return s, true
			}
			continue
		}
		if spin&7 == 7 {
			runtime.Gosched()
		}
	}
	return 0, false
}

func (r *Ref) unlock(loc metrics.Local, version int64) {
	loc.IncAtomic()
	r.state.Store(version << 1)
}

// rawLoad reads the current value without transactional protection; used
// internally after validation and by ReadAtomic.
func (r *Ref) rawLoad(loc metrics.Local) any {
	loc.IncAtomic()
	return unboxNil(r.value.Load())
}

// errConflict aborts and restarts the enclosing transaction.
var errConflict = errors.New("stm: conflict")

// retrySignal makes Atomically block until another transaction commits.
type retrySignal struct{}

// Tx is an in-flight transaction. It must only be used by the function it
// was passed to, on that goroutine, and must not be retained after the
// function returns (transactions are pooled).
type Tx struct {
	readVersion int64
	reads       []readEntry
	// writes is kept sorted by ref id on insertion: commit locks it in
	// index order (canonical, deadlock-free) with no per-commit sort.
	writes []writeEntry
	loc    metrics.Local
	rng    uint64
	// Aborts counts how many times this transaction body was restarted.
	Aborts int
	// Extensions counts successful TL2 timestamp extensions: reads that
	// would have aborted under plain TL2 but revalidated against a newer
	// clock instead.
	Extensions int
}

type readEntry struct {
	ref     *Ref
	version int64
}

type writeEntry struct {
	ref *Ref
	v   any
	// prev is the ref's pre-lock state, recorded at commit time so an
	// aborting commit can restore the old version word.
	prev int64
}

// smallWriteSet is the write-set size up to which lookups use a linear
// scan; larger sets switch to binary search over the id-sorted vector.
const smallWriteSet = 8

// searchWrites returns the index of id in the id-sorted write set, or the
// insertion point with found=false.
func (tx *Tx) searchWrites(id uint64) (int, bool) {
	w := tx.writes
	if len(w) <= smallWriteSet {
		for i := range w {
			if w[i].ref.id >= id {
				return i, w[i].ref.id == id
			}
		}
		return len(w), false
	}
	lo, hi := 0, len(w)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if w[mid].ref.id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(w) && w[lo].ref.id == id
}

// Read returns the ref's value as seen by the transaction.
func (tx *Tx) Read(r *Ref) any {
	if i, found := tx.searchWrites(r.id); found {
		return tx.writes[i].v
	}
	for spins := 0; ; spins++ {
		s1 := r.loadState(tx.loc)
		if !stateLocked(s1) {
			v := r.rawLoad(tx.loc)
			if r.loadState(tx.loc) == s1 {
				if stateVersion(s1) > tx.readVersion {
					// The ref moved past our read timestamp. Instead of
					// aborting, try to extend: if every ref read so far is
					// unchanged, the snapshot is still valid at the current
					// clock, and the read can be retried under the new
					// timestamp.
					if !tx.extend() {
						panic(errConflict)
					}
					continue
				}
				tx.reads = append(tx.reads, readEntry{r, stateVersion(s1)})
				return v
			}
		}
		if spins >= readSpinLimit {
			panic(errConflict)
		}
		if spins&7 == 7 {
			runtime.Gosched()
		}
	}
}

// extend attempts a TL2 timestamp extension: it snapshots the current
// clock, revalidates every read made so far, and on success advances the
// transaction's read timestamp to the snapshot. Reads validated this way
// are exactly as consistent as reads made at the new timestamp, so a long
// read-only traversal survives concurrent short writers that bump the
// clock on refs the traversal never touches.
func (tx *Tx) extend() bool {
	tx.loc.IncAtomic()
	newRV := globalClock.v.Load()
	for i := range tx.reads {
		re := &tx.reads[i]
		s := re.ref.loadState(tx.loc)
		if stateLocked(s) || stateVersion(s) != re.version {
			return false
		}
	}
	tx.readVersion = newRV
	tx.Extensions++
	tx.loc.IncStmExtend()
	return true
}

// Write records a new value for the ref in the transaction's write set
// (id-sorted insert; overwrites an existing entry for the same ref).
func (tx *Tx) Write(r *Ref, v any) {
	i, found := tx.searchWrites(r.id)
	if found {
		tx.writes[i].v = v
		return
	}
	tx.writes = append(tx.writes, writeEntry{})
	copy(tx.writes[i+1:], tx.writes[i:])
	tx.writes[i] = writeEntry{ref: r, v: v}
}

// Retry abandons the transaction and blocks until another transaction
// commits to a ref in its read set — the STM guarded-block operation.
func (tx *Tx) Retry() {
	panic(retrySignal{})
}

// Atomically runs fn transactionally: fn may be executed several times, and
// its STM effects take place all-or-nothing. A non-nil error from fn rolls
// the transaction back and is returned.
func Atomically(fn func(tx *Tx) error) error {
	tx := acquireTx()
	defer tx.release()
	for {
		tx.begin()
		outcome, err := runAttempt(tx, fn)
		switch outcome {
		case attemptOK:
			if err != nil {
				return err // rolled back by discarding the write set
			}
			if tx.commit() {
				return nil
			}
			tx.onConflict()
		case attemptConflict:
			tx.onConflict()
		case attemptRetry:
			tx.loc.IncWait()
			tx.waitForChange()
			tx.Aborts++
		}
	}
}

// begin resets the per-attempt state and takes the read timestamp.
func (tx *Tx) begin() {
	tx.clearSets()
	tx.loc.IncAtomic()
	tx.readVersion = globalClock.v.Load()
}

// onConflict records a conflict abort and applies the contention manager's
// backoff policy: the first few aborts just yield, then the wait grows
// exponentially (bounded, with seeded jitter) so colliding transactions
// desynchronize instead of re-colliding in lockstep.
func (tx *Tx) onConflict() {
	tx.Aborts++
	tx.loc.IncStmAbort()
	if tx.Aborts <= backoffSpinAborts {
		runtime.Gosched()
		return
	}
	shift := tx.Aborts - backoffSpinAborts
	if shift > backoffMaxShift {
		shift = backoffMaxShift
	}
	window := uint64(1) << uint(shift) // µs
	tx.rng = tx.rng*6364136223846793005 + 1442695040888963407
	jitter := (tx.rng >> 33) % (window/2 + 1)
	tx.loc.IncPark()
	time.Sleep(time.Duration(window/2+jitter) * time.Microsecond)
}

type attemptOutcome int

const (
	attemptOK attemptOutcome = iota
	attemptConflict
	attemptRetry
)

func runAttempt(tx *Tx, fn func(tx *Tx) error) (outcome attemptOutcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			switch p {
			case errConflict:
				outcome = attemptConflict
			default:
				if _, isRetry := p.(retrySignal); isRetry {
					outcome = attemptRetry
					return
				}
				panic(p)
			}
		}
	}()
	err = fn(tx)
	return attemptOK, err
}

// commit attempts the TL2 commit protocol; it reports success. Only
// read-write transactions advance the global clock: a read-only commit
// validated its reads on the fly and returns without touching shared state.
//
// Ordering: lock the write set in id order (bounded spin per ref), take the
// write version from the clock, validate the read set (skipped entirely
// when the clock moved by exactly one — no concurrent commit intervened),
// publish values and unlock, and only then — behind a single "any waiters?"
// atomic check — wake parked Retry-ers registered on the written refs.
func (tx *Tx) commit() bool {
	if chaos.Maybe("stm.commit") {
		// An injected abort is indistinguishable from losing a real
		// validation race: Atomically re-runs the transaction, which is
		// exactly the degradation path under test.
		return false
	}
	if len(tx.writes) == 0 {
		// Read-only transaction: reads were validated on the fly.
		return true
	}

	// Lock the write set in id order (the vector is already id-sorted).
	locked := 0
	for i := range tx.writes {
		w := &tx.writes[i]
		prev, ok := w.ref.spinLock(tx.loc)
		if !ok || stateVersion(prev) > tx.readVersion {
			if ok {
				w.ref.unlock(tx.loc, stateVersion(prev))
			}
			tx.unlockPrefix(locked)
			return false
		}
		w.prev = prev
		locked++
	}

	tx.loc.IncAtomic()
	wv := globalClock.v.Add(1)
	if wv != tx.readVersion+1 {
		// Some other transaction committed since we began; the read set
		// must still be what we saw.
		for i := range tx.reads {
			re := &tx.reads[i]
			s := re.ref.loadState(tx.loc)
			if stateVersion(s) != re.version {
				tx.unlockPrefix(locked)
				return false
			}
			if stateLocked(s) {
				if _, mine := tx.searchWrites(re.ref.id); !mine {
					tx.unlockPrefix(locked)
					return false
				}
			}
		}
	}

	// Publish.
	for i := range tx.writes {
		w := &tx.writes[i]
		tx.loc.IncAtomic()
		w.ref.value.Store(boxNil(w.v))
		w.ref.unlock(tx.loc, wv)
	}

	// Waiter-free fast path: one atomic load, no channel or mutex ops.
	if waiterCount.v.Load() > 0 {
		tx.wakeWaiters()
	}
	return true
}

// unlockPrefix releases the first n locked write-set entries at their
// pre-lock versions.
func (tx *Tx) unlockPrefix(n int) {
	for i := 0; i < n; i++ {
		w := &tx.writes[i]
		w.ref.unlock(tx.loc, stateVersion(w.prev))
	}
}

// ReadAtomic returns the ref's current committed value outside any
// transaction (equivalent to a single-read transaction). The seqlock retry
// is bounded: past the spin limit it yields the processor between attempts
// instead of busy-spinning against a parked or preempted lock holder.
func ReadAtomic(r *Ref) any {
	loc := metrics.Acquire()
	for spins := 0; ; spins++ {
		s1 := r.loadState(loc)
		if !stateLocked(s1) {
			v := r.rawLoad(loc)
			if r.loadState(loc) == s1 {
				return v
			}
		}
		if spins >= readAtomicSpinLimit {
			loc.IncPark()
			runtime.Gosched()
		}
	}
}

// WriteAtomic sets the ref's value in a single-write transaction.
func WriteAtomic(r *Ref, v any) {
	_ = Atomically(func(tx *Tx) error {
		tx.Write(r, v)
		return nil
	})
}

// Clock returns the current global version, exposed for tests and stats.
func Clock() int64 { return globalClock.v.Load() }
