// Package stm implements a TL2-style software transactional memory in the
// spirit of ScalaSTM (Bronson et al.), used by the philosophers and
// stm-bench7 benchmarks (Table 1: "STM, atomics, guarded blocks").
//
// Each transactional reference carries a versioned lock word manipulated
// with compare-and-swap; transactions keep read and write sets, validate
// reads against a global version clock, and commit by locking the write set
// in a canonical order. Retry implements the guarded-block pattern: a
// transaction that calls Retry blocks until some other transaction commits,
// which maps onto the paper's wait/notify metrics.
//
// Contention notes: the global version clock lives on its own cache line so
// that commit-time fetch-adds do not false-share with neighbouring package
// state, and it is only advanced by read-write commits — read-only
// transactions observe it but never write it. Each transaction acquires a
// shard-pinned metrics.Local once, so per-operation instrumentation is a
// single uncontended atomic add, and no metric bump happens while any lock
// is held.
package stm

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"renaissance/internal/chaos"
	"renaissance/internal/metrics"
)

// globalClock is the TL2 global version clock, padded to a cache line of
// its own: every read-write commit fetch-adds it, and sharing a line with
// other hot package state would couple their costs.
var globalClock struct {
	_ [64]byte
	v atomic.Int64
	_ [56]byte
}

// refIDs allocates unique reference identities for deadlock-free lock
// ordering at commit time.
var refIDs atomic.Uint64

// retry broadcast: a generation channel closed on every commit.
var (
	retryMu sync.Mutex
	retryCh = make(chan struct{})
)

func commitBroadcast(loc metrics.Local) {
	loc.IncSynch()
	retryMu.Lock()
	close(retryCh)
	retryCh = make(chan struct{})
	retryMu.Unlock()
	loc.IncNotify()
}

func currentRetryGen(loc metrics.Local) <-chan struct{} {
	loc.IncSynch()
	retryMu.Lock()
	ch := retryCh
	retryMu.Unlock()
	return ch
}

// A Ref is a transactional memory cell. The zero value is not usable;
// create refs with NewRef.
type Ref struct {
	id uint64
	// state packs (version << 1) | lockedBit.
	state atomic.Int64
	value atomic.Value
}

type box struct{ v any }

// NewRef creates a transactional reference holding the initial value.
func NewRef(initial any) *Ref {
	metrics.IncObject()
	r := &Ref{id: refIDs.Add(1)}
	r.value.Store(box{initial})
	return r
}

func (r *Ref) loadState(loc metrics.Local) int64 {
	loc.IncAtomic()
	return r.state.Load()
}

func stateVersion(s int64) int64 { return s >> 1 }
func stateLocked(s int64) bool   { return s&1 == 1 }

func (r *Ref) tryLock(loc metrics.Local) (prev int64, ok bool) {
	s := r.loadState(loc)
	if stateLocked(s) {
		return s, false
	}
	loc.IncAtomic()
	return s, r.state.CompareAndSwap(s, s|1)
}

func (r *Ref) unlock(loc metrics.Local, version int64) {
	loc.IncAtomic()
	r.state.Store(version << 1)
}

// rawLoad reads the current value without transactional protection; used
// internally after validation and by ReadAtomic.
func (r *Ref) rawLoad(loc metrics.Local) any {
	loc.IncAtomic()
	return r.value.Load().(box).v
}

// errConflict aborts and restarts the enclosing transaction.
var errConflict = errors.New("stm: conflict")

// retrySignal makes Atomically block until another transaction commits.
type retrySignal struct{}

// Tx is an in-flight transaction. It must only be used by the function it
// was passed to, on that goroutine.
type Tx struct {
	readVersion int64
	reads       []readEntry
	writes      map[*Ref]any
	loc         metrics.Local
	// Aborts counts how many times this transaction body was restarted.
	Aborts int
}

type readEntry struct {
	ref     *Ref
	version int64
}

// Read returns the ref's value as seen by the transaction.
func (tx *Tx) Read(r *Ref) any {
	if v, written := tx.writes[r]; written {
		return v
	}
	for spins := 0; ; spins++ {
		s1 := r.loadState(tx.loc)
		if !stateLocked(s1) {
			v := r.rawLoad(tx.loc)
			s2 := r.loadState(tx.loc)
			if s1 == s2 {
				if stateVersion(s1) > tx.readVersion {
					panic(errConflict)
				}
				tx.reads = append(tx.reads, readEntry{r, stateVersion(s1)})
				return v
			}
		}
		if spins > 64 {
			panic(errConflict)
		}
	}
}

// Write records a new value for the ref in the transaction's write set.
func (tx *Tx) Write(r *Ref, v any) {
	if tx.writes == nil {
		tx.writes = make(map[*Ref]any, 4)
	}
	tx.writes[r] = v
}

// Retry abandons the transaction and blocks until another transaction
// commits, then re-executes it — the STM guarded-block operation.
func (tx *Tx) Retry() {
	panic(retrySignal{})
}

// Atomically runs fn transactionally: fn may be executed several times, and
// its STM effects take place all-or-nothing. A non-nil error from fn rolls
// the transaction back and is returned.
func Atomically(fn func(tx *Tx) error) error {
	loc := metrics.Acquire()
	aborts := 0
	for {
		gen := currentRetryGen(loc)
		loc.IncAtomic()
		tx := &Tx{readVersion: globalClock.v.Load(), loc: loc, Aborts: aborts}
		outcome, err := runAttempt(tx, fn)
		switch outcome {
		case attemptOK:
			if err != nil {
				return err // rolled back by discarding the write set
			}
			if tx.commit() {
				return nil
			}
			aborts++
		case attemptConflict:
			aborts++
		case attemptRetry:
			loc.IncWait()
			loc.IncPark()
			<-gen
			aborts++
		}
	}
}

type attemptOutcome int

const (
	attemptOK attemptOutcome = iota
	attemptConflict
	attemptRetry
)

func runAttempt(tx *Tx, fn func(tx *Tx) error) (outcome attemptOutcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			switch p {
			case errConflict:
				outcome = attemptConflict
			default:
				if _, isRetry := p.(retrySignal); isRetry {
					outcome = attemptRetry
					return
				}
				panic(p)
			}
		}
	}()
	err = fn(tx)
	return attemptOK, err
}

// commit attempts the TL2 commit protocol; it reports success. Only
// read-write transactions advance the global clock: a read-only commit
// validated its reads on the fly and returns without touching shared state.
func (tx *Tx) commit() bool {
	if chaos.Maybe("stm.commit") {
		// An injected abort is indistinguishable from losing a real
		// validation race: Atomically re-runs the transaction, which is
		// exactly the degradation path under test.
		return false
	}
	if len(tx.writes) == 0 {
		// Read-only transaction: reads were validated on the fly.
		return true
	}

	// Lock the write set in id order to avoid deadlock.
	locked := make([]*Ref, 0, len(tx.writes))
	refs := make([]*Ref, 0, len(tx.writes))
	for r := range tx.writes {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].id < refs[j].id })
	abort := func() {
		for _, r := range locked {
			prev := r.loadState(tx.loc)
			r.unlock(tx.loc, stateVersion(prev))
		}
	}
	for _, r := range refs {
		prev, ok := r.tryLock(tx.loc)
		if !ok || stateVersion(prev) > tx.readVersion {
			if ok {
				r.unlock(tx.loc, stateVersion(prev))
			}
			abort()
			return false
		}
		locked = append(locked, r)
	}

	// Validate the read set.
	for _, re := range tx.reads {
		s := re.ref.loadState(tx.loc)
		lockedByMe := false
		if _, mine := tx.writes[re.ref]; mine {
			lockedByMe = true
		}
		if stateVersion(s) != re.version || (stateLocked(s) && !lockedByMe) {
			abort()
			return false
		}
	}

	// Publish.
	tx.loc.IncAtomic()
	wv := globalClock.v.Add(1)
	for _, r := range refs {
		tx.loc.IncAtomic()
		r.value.Store(box{tx.writes[r]})
		r.unlock(tx.loc, wv)
	}
	commitBroadcast(tx.loc)
	return true
}

// ReadAtomic returns the ref's current committed value outside any
// transaction (equivalent to a single-read transaction).
func ReadAtomic(r *Ref) any {
	loc := metrics.Acquire()
	for {
		s1 := r.loadState(loc)
		if stateLocked(s1) {
			continue
		}
		v := r.rawLoad(loc)
		if r.loadState(loc) == s1 {
			return v
		}
	}
}

// WriteAtomic sets the ref's value in a single-write transaction.
func WriteAtomic(r *Ref, v any) {
	_ = Atomically(func(tx *Tx) error {
		tx.Write(r, v)
		return nil
	})
}

// Clock returns the current global version, exposed for tests and stats.
func Clock() int64 { return globalClock.v.Load() }
