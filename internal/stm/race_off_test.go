//go:build !race

package stm

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions only hold without its bookkeeping allocs.
const raceEnabled = false
