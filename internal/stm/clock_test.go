package stm

import (
	"sync"
	"testing"
)

// Read-only transactions must not advance (or otherwise write) the global
// version clock — only read-write commits do. This keeps read-heavy STM
// workloads off the clock's cache line entirely.
func TestReadOnlyTransactionsDoNotAdvanceClock(t *testing.T) {
	r := NewRef(42)
	before := Clock()
	for i := 0; i < 100; i++ {
		if err := Atomically(func(tx *Tx) error {
			if got := tx.Read(r).(int); got != 42 {
				t.Fatalf("read %d", got)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := Clock(); got != before {
		t.Fatalf("read-only transactions advanced the clock: %d -> %d", before, got)
	}
	// A read-write commit does advance it, by exactly one.
	if err := Atomically(func(tx *Tx) error {
		tx.Write(r, 43)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := Clock(); got != before+1 {
		t.Fatalf("write commit moved clock %d -> %d, want +1", before, got)
	}
}

// Concurrent read-only transactions against concurrent writers stay
// consistent and race-free (exercised under -race by the Makefile).
func TestConcurrentReadersWithWriters(t *testing.T) {
	a := NewRef(0)
	b := NewRef(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = Atomically(func(tx *Tx) error {
					x := tx.Read(a).(int)
					y := tx.Read(b).(int)
					if x != y {
						t.Errorf("invariant broken: %d != %d", x, y)
					}
					return nil
				})
			}
		}()
	}
	for i := 1; i <= 200; i++ {
		if err := Atomically(func(tx *Tx) error {
			tx.Write(a, i)
			tx.Write(b, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
