// Per-ref waiter registration: the guarded-block (Retry) slow path.
//
// The seed implementation woke every parked transaction on every commit
// through a global mutex-guarded broadcast channel, costing two mutex
// operations per commit whether or not anyone was waiting, and stampeding
// every waiter on every commit. Here a Retry-ing transaction registers a
// waiter node on the stripe of each ref in its read set (a lock-free
// Treiber push; stripes are keyed by ref id), and a committing transaction
// consults a single process-wide waiter count — one atomic load — before
// doing any notification work at all. Only commits that actually overlap a
// populated stripe walk it, waking exactly the waiters registered for the
// written refs.
//
// Lost-wakeup freedom. The waiter publishes its registration (count
// increment, then node pushes) before revalidating its read set, and the
// committer publishes its writes (value stores + version unlocks) before
// loading the waiter count and detaching stripes. With sequentially
// consistent atomics this pairs as a classic store/load fence: either the
// committer's detach observes the waiter's node and fires it, or the
// waiter's revalidation observes the committer's new version and returns
// without parking. There is no window in which a waiter parks against a
// commit it cannot see.
//
// Dropped wakeups (the stm.wake chaos point simulates exactly this) are
// not fatal: a parked waiter revalidates its read set on a periodic timer
// with a growing period, so a lost signal degrades to bounded extra
// latency, never to a hang.
package stm

import (
	"sync/atomic"
	"time"

	"renaissance/internal/chaos"
)

const (
	// waiterStripeCount is the number of waiter-table stripes (power of
	// two); refs hash onto stripes by id.
	waiterStripeCount = 64
	// maxRegistered caps how many read-set refs a waiter registers on.
	// Guarded blocks have small read sets in practice; a pathological
	// waiter with a huge read set registers on the first maxRegistered
	// refs and relies on periodic revalidation for the rest, trading
	// wakeup latency for bounded registration cost.
	maxRegistered = 128
	// revalInitial/revalMax bound the periodic revalidation timer: the
	// period doubles from the initial value up to the cap, so short waits
	// recover from a lost wakeup quickly while long waits do not spin.
	revalInitial = 200 * time.Microsecond
	revalMax     = 5 * time.Millisecond
)

// Waiter states. A node only acts on a waiter whose state it can move
// waiting→fired with a CAS, so every waiter is woken at most once and a
// cancelled waiter is never signalled.
const (
	waiterWaiting int32 = iota
	waiterFired
	waiterCancelled
)

// waiter is one parked Retry-er. The channel has capacity 1 and is sent to
// non-blockingly, so a committer never blocks on a slow waiter.
type waiter struct {
	ch    chan struct{}
	state atomic.Int32
}

// waiterNode links a waiter into one stripe for one ref id. Nodes are
// owned by whoever detached the stripe; stale nodes (fired or cancelled
// waiters) are dropped during the next detach of their stripe.
type waiterNode struct {
	next  *waiterNode
	w     *waiter
	refID uint64
}

// waiterStripe is one lock-free stack of registrations, padded so hot
// stripes do not false-share.
type waiterStripe struct {
	_    [64]byte
	head atomic.Pointer[waiterNode]
	_    [56]byte
}

var waiterTable [waiterStripeCount]waiterStripe

// waiterCount is the global "anyone waiting?" gate, on its own cache line:
// the waiter-free commit fast path is a single load of this counter.
var waiterCount struct {
	_ [64]byte
	v atomic.Int64
	_ [56]byte
}

func stripeFor(id uint64) *waiterStripe {
	return &waiterTable[id&(waiterStripeCount-1)]
}

func (st *waiterStripe) push(n *waiterNode) {
	for {
		h := st.head.Load()
		n.next = h
		if st.head.CompareAndSwap(h, n) {
			return
		}
	}
}

// readSetChanged reports whether any ref in the transaction's read set has
// moved past the version recorded when it was read (a locked ref counts as
// changing: the holder is about to publish).
func (tx *Tx) readSetChanged() bool {
	for i := range tx.reads {
		re := &tx.reads[i]
		s := re.ref.loadState(tx.loc)
		if stateLocked(s) || stateVersion(s) != re.version {
			return true
		}
	}
	return false
}

// waitForChange parks the transaction until some committed transaction
// overlaps its read set: it registers a waiter on each read ref's stripe,
// revalidates (closing the register-vs-commit race), and then blocks on
// its signal channel with a periodic revalidation timer as the
// lost-wakeup backstop.
func (tx *Tx) waitForChange() {
	if len(tx.reads) == 0 {
		// Degenerate guarded block that read nothing: there is no ref to
		// wait on, so yield briefly and re-execute.
		tx.loc.IncPark()
		time.Sleep(revalInitial)
		return
	}

	w := &waiter{ch: make(chan struct{}, 1)}
	waiterCount.v.Add(1)
	registered := 0
	var lastID uint64
	for i := range tx.reads {
		if registered >= maxRegistered {
			break
		}
		id := tx.reads[i].ref.id
		if registered > 0 && id == lastID {
			continue // cheap dedup of consecutive re-reads
		}
		stripeFor(id).push(&waiterNode{w: w, refID: id})
		lastID = id
		registered++
	}

	// Registration is published; if a commit already changed a read ref
	// (before or while we registered), return immediately — parking now
	// could miss a wakeup that fired before our nodes were visible.
	if tx.readSetChanged() {
		w.state.CompareAndSwap(waiterWaiting, waiterCancelled)
		waiterCount.v.Add(-1)
		return
	}

	period := revalInitial
	timer := time.NewTimer(period)
	defer timer.Stop()
	for {
		tx.loc.IncPark()
		select {
		case <-w.ch:
			waiterCount.v.Add(-1)
			return
		case <-timer.C:
			if tx.readSetChanged() {
				w.state.CompareAndSwap(waiterWaiting, waiterCancelled)
				waiterCount.v.Add(-1)
				return
			}
			period *= 2
			if period > revalMax {
				period = revalMax
			}
			timer.Reset(period)
		}
	}
}

// wakeWaiters walks the stripes of the written refs and fires every waiter
// registered for one of them. Called only when waiterCount is non-zero.
// Each touched stripe is detached wholesale (an unconditional swap, immune
// to ABA), matching nodes are fired, stale nodes are dropped, and live
// nodes for other refs are pushed back.
func (tx *Tx) wakeWaiters() {
	for i := range tx.writes {
		id := tx.writes[i].ref.id
		st := stripeFor(id)
		if st.head.Load() == nil {
			continue
		}
		n := st.head.Swap(nil)
		var keep *waiterNode
		for n != nil {
			next := n.next
			if n.w.state.Load() == waiterWaiting {
				if n.refID == id {
					if n.w.state.CompareAndSwap(waiterWaiting, waiterFired) {
						tx.loc.IncNotify()
						if !chaos.Maybe("stm.wake") {
							select {
							case n.w.ch <- struct{}{}:
							default:
							}
						}
						// A dropped send (chaos) models a lost wakeup: the
						// waiter recovers via periodic revalidation.
					}
				} else {
					n.next = keep
					keep = n
				}
			}
			n = next
		}
		for keep != nil {
			next := keep.next
			st.push(keep)
			keep = next
		}
	}
}

// waitingCount exposes the current waiter population for tests.
func waitingCount() int64 { return waiterCount.v.Load() }
