package stm

// A faithful copy of the seed TL2 implementation, kept as the in-test
// baseline for the seed-vs-new benchmarks (BENCH_stm.txt): global
// mutex-guarded broadcast channel for Retry, map[*ref]any write set sorted
// at every commit, box-wrapped atomic.Value stores, unbounded ReadAtomic
// spin. Metrics instrumentation is stripped — both sides of the comparison
// run uninstrumented transaction logic plus their own synchronization, so
// the deltas isolate the algorithmic change.

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
)

var (
	seedClock   atomic.Int64
	seedRefIDs  atomic.Uint64
	seedRetryMu sync.Mutex
	seedRetryCh = make(chan struct{})
)

func seedCommitBroadcast() {
	seedRetryMu.Lock()
	close(seedRetryCh)
	seedRetryCh = make(chan struct{})
	seedRetryMu.Unlock()
}

func seedCurrentRetryGen() <-chan struct{} {
	seedRetryMu.Lock()
	ch := seedRetryCh
	seedRetryMu.Unlock()
	return ch
}

type seedRef struct {
	id    uint64
	state atomic.Int64
	value atomic.Value
}

type seedBox struct{ v any }

func newSeedRef(initial any) *seedRef {
	r := &seedRef{id: seedRefIDs.Add(1)}
	r.value.Store(seedBox{initial})
	return r
}

var errSeedConflict = errors.New("stm: seed conflict")

type seedRetrySignal struct{}

type seedTx struct {
	readVersion int64
	reads       []seedReadEntry
	writes      map[*seedRef]any
}

type seedReadEntry struct {
	ref     *seedRef
	version int64
}

func (tx *seedTx) read(r *seedRef) any {
	if v, written := tx.writes[r]; written {
		return v
	}
	for spins := 0; ; spins++ {
		s1 := r.state.Load()
		if !stateLocked(s1) {
			v := r.value.Load().(seedBox).v
			s2 := r.state.Load()
			if s1 == s2 {
				if stateVersion(s1) > tx.readVersion {
					panic(errSeedConflict)
				}
				tx.reads = append(tx.reads, seedReadEntry{r, stateVersion(s1)})
				return v
			}
		}
		if spins > 64 {
			panic(errSeedConflict)
		}
	}
}

func (tx *seedTx) write(r *seedRef, v any) {
	if tx.writes == nil {
		tx.writes = make(map[*seedRef]any, 4)
	}
	tx.writes[r] = v
}

func (tx *seedTx) retry() {
	panic(seedRetrySignal{})
}

func seedAtomically(fn func(tx *seedTx) error) error {
	for {
		gen := seedCurrentRetryGen()
		tx := &seedTx{readVersion: seedClock.Load()}
		outcome, err := seedRunAttempt(tx, fn)
		switch outcome {
		case attemptOK:
			if err != nil {
				return err
			}
			if tx.commit() {
				return nil
			}
		case attemptConflict:
		case attemptRetry:
			<-gen
		}
	}
}

func seedRunAttempt(tx *seedTx, fn func(tx *seedTx) error) (outcome attemptOutcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			switch p {
			case errSeedConflict:
				outcome = attemptConflict
			default:
				if _, isRetry := p.(seedRetrySignal); isRetry {
					outcome = attemptRetry
					return
				}
				panic(p)
			}
		}
	}()
	err = fn(tx)
	return attemptOK, err
}

func (tx *seedTx) commit() bool {
	if len(tx.writes) == 0 {
		return true
	}
	locked := make([]*seedRef, 0, len(tx.writes))
	refs := make([]*seedRef, 0, len(tx.writes))
	for r := range tx.writes {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].id < refs[j].id })
	abort := func() {
		for _, r := range locked {
			prev := r.state.Load()
			r.state.Store(stateVersion(prev) << 1)
		}
	}
	for _, r := range refs {
		s := r.state.Load()
		ok := !stateLocked(s) && r.state.CompareAndSwap(s, s|1)
		if !ok || stateVersion(s) > tx.readVersion {
			if ok {
				r.state.Store(stateVersion(s) << 1)
			}
			abort()
			return false
		}
		locked = append(locked, r)
	}
	for _, re := range tx.reads {
		s := re.ref.state.Load()
		_, mine := tx.writes[re.ref]
		if stateVersion(s) != re.version || (stateLocked(s) && !mine) {
			abort()
			return false
		}
	}
	wv := seedClock.Add(1)
	for _, r := range refs {
		r.value.Store(seedBox{tx.writes[r]})
		r.state.Store(wv << 1)
	}
	seedCommitBroadcast()
	return true
}

func seedReadAtomic(r *seedRef) any {
	for {
		s1 := r.state.Load()
		if stateLocked(s1) {
			continue
		}
		v := r.value.Load().(seedBox).v
		if r.state.Load() == s1 {
			return v
		}
	}
}

func seedWriteAtomic(r *seedRef, v any) {
	_ = seedAtomically(func(tx *seedTx) error {
		tx.write(r, v)
		return nil
	})
}
