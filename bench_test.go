// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (regenerating the artifact's data each iteration),
// plus ablation benchmarks for the design choices called out in DESIGN.md.
// Run with:
//
//	go test -bench=. -benchmem
//
// Individual experiments: go test -bench=BenchmarkFigure5 -benchtime=1x
package renaissance_test

import (
	"fmt"
	"testing"

	"renaissance/internal/ck"
	"renaissance/internal/core"
	"renaissance/internal/experiments"
	"renaissance/internal/metrics"
	"renaissance/internal/rvm/jit"
	"renaissance/internal/rvm/kernels"
	"renaissance/internal/rvm/opt"
	"renaissance/internal/stm"

	_ "renaissance/internal/bench/classic"
	_ "renaissance/internal/bench/fn"
	_ "renaissance/internal/bench/oo"
	_ "renaissance/internal/bench/renaissance"
)

// --- Table 1: benchmark inventory ---

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1()
		if len(t.Rows) != 21 {
			b.Fatalf("table 1 has %d rows", len(t.Rows))
		}
	}
}

// profileCache avoids re-collecting the (identical) Table 7 data in every
// figure benchmark.
var profileCache []*metrics.Profile

func profilesOnce(b *testing.B) []*metrics.Profile {
	b.Helper()
	if profileCache == nil {
		ps, err := experiments.CollectProfiles(0.1)
		if err != nil {
			b.Fatal(err)
		}
		profileCache = ps
	}
	return profileCache
}

// --- Table 7: metric profiles of all 68 benchmarks ---

func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps, err := experiments.CollectProfiles(0.1)
		if err != nil {
			b.Fatal(err)
		}
		if len(ps) != 68 {
			b.Fatalf("%d profiles", len(ps))
		}
		profileCache = ps
	}
}

// --- Table 3 + Figure 1: PCA diversity analysis ---

func BenchmarkFigure1PCA(b *testing.B) {
	ps := profilesOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := experiments.Analyze(ps)
		if err != nil {
			b.Fatal(err)
		}
		if d.ExplainedVariance(4) <= 0 {
			b.Fatal("degenerate PCA")
		}
	}
}

// --- Figures 2, 3, 4: metric-rate charts ---

func benchRate(b *testing.B, m metrics.Metric) {
	ps := profilesOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bars := experiments.RateBars(ps, m)
		if len(bars) != len(ps) {
			b.Fatal("bad bars")
		}
	}
}

func BenchmarkFigure2AtomicRates(b *testing.B)   { benchRate(b, metrics.Atomic) }
func BenchmarkFigure3SynchRates(b *testing.B)    { benchRate(b, metrics.Synch) }
func BenchmarkFigure4IDynamicRates(b *testing.B) { benchRate(b, metrics.IDynamic) }

// --- Figure 5 + Tables 12–15: optimization impact matrix ---

func BenchmarkFigure5Impact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.MeasureImpacts(1, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 68*7 {
			b.Fatalf("%d cells", len(cells))
		}
	}
}

// --- Figure 6: compiler comparison ---

func BenchmarkFigure6Compilers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CompareCompilers(1, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 68 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// --- Figure 7: compiled code size ---

func BenchmarkFigure7CodeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CodeSizes(1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 68 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// --- Table 16: compilation time per optimization ---

func BenchmarkTable16CompileTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CompileTimes(1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §5.5 guard table ---

func BenchmarkGuardTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.GuardProfile(1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §5.4 hottest-methods table ---

func BenchmarkMHSHotMethods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.MHSMethodProfile(1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables 4, 5, 8–11: CK complexity metrics ---

func BenchmarkTable4CK(b *testing.B) {
	dirs := experiments.SuiteSourceDirs(".")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ds := range dirs {
			rep, err := ck.AnalyzeDirs(ds)
			if err != nil {
				b.Fatal(err)
			}
			if rep.TypeCount == 0 {
				b.Fatal("no types analyzed")
			}
		}
	}
}

// --- Per-benchmark harness benchmarks (one iteration per b.N) ---

func BenchmarkRenaissance(b *testing.B) {
	for _, spec := range core.Global.BySuite(core.SuiteRenaissance) {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.SizeFactor = 0.1
			w, err := spec.Setup(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if c, ok := w.(core.Closer); ok {
				defer c.Close()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunIteration(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationLLCChunk sweeps the lock-coarsening tile size C on the
// fj-kmeans kernel (the paper: "a chunk size of C = 32 works well").
func BenchmarkAblationLLCChunk(b *testing.B) {
	spec, ok := kernels.Lookup(kernels.SuiteRenaissance, "fj-kmeans")
	if !ok {
		b.Fatal("missing kernel")
	}
	prog, err := kernels.Build(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	saved := opt.CoarsenChunk
	defer func() { opt.CoarsenChunk = saved }()
	for _, c := range []int64{1, 4, 8, 32, 128} {
		c := c
		b.Run(fmt.Sprintf("C=%d", c), func(b *testing.B) {
			opt.CoarsenChunk = c
			compiled, err := jit.Compile(prog, opt.OptPipeline())
			if err != nil {
				b.Fatal(err)
			}
			var cycles int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := compiled.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationMHSInline measures MHS with inlining disabled: the
// devirtualized call must still help, but less than with the inliner
// consuming it (§5.4's "inlining ... triggers other optimizations").
func BenchmarkAblationMHSInline(b *testing.B) {
	spec, _ := kernels.Lookup(kernels.SuiteRenaissance, "scrabble")
	prog, err := kernels.Build(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	configs := map[string]*opt.Pipeline{
		"no-mhs":         opt.OptPipeline().Disable(opt.NameMHS),
		"mhs-no-inline":  opt.OptPipeline().Disable(opt.NameInline),
		"mhs-and-inline": opt.OptPipeline(),
	}
	for name, pipe := range configs {
		pipe := pipe
		b.Run(name, func(b *testing.B) {
			compiled, err := jit.Compile(prog, pipe)
			if err != nil {
				b.Fatal(err)
			}
			var cycles int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := compiled.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationGMEnablesLV quantifies the §5.6 interaction: disabling
// guard motion must also suppress vectorization.
func BenchmarkAblationGMEnablesLV(b *testing.B) {
	spec, _ := kernels.Lookup(kernels.SuiteSPECjvm, "scimark.lu.small")
	prog, err := kernels.Build(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	configs := map[string]*opt.Pipeline{
		"gm-and-lv": opt.OptPipeline(),
		"lv-only":   opt.OptPipeline().Disable(opt.NameGM),
		"gm-only":   opt.OptPipeline().Disable(opt.NameLV),
		"neither":   opt.OptPipeline().Disable(opt.NameGM, opt.NameLV),
	}
	for name, pipe := range configs {
		pipe := pipe
		b.Run(name, func(b *testing.B) {
			compiled, err := jit.Compile(prog, pipe)
			if err != nil {
				b.Fatal(err)
			}
			var cycles int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := compiled.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationSTMContention sweeps worker counts on an STM counter,
// showing the commit-retry cost under contention.
func BenchmarkAblationSTMContention(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ref := stm.NewRef(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done := make(chan struct{})
				for w := 0; w < workers; w++ {
					go func() {
						for k := 0; k < 200; k++ {
							_ = stm.Atomically(func(tx *stm.Tx) error {
								tx.Write(ref, tx.Read(ref).(int)+1)
								return nil
							})
						}
						done <- struct{}{}
					}()
				}
				for w := 0; w < workers; w++ {
					<-done
				}
			}
		})
	}
}
