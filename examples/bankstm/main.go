// Bankstm: concurrent bank transfers on the TL2 software transactional
// memory with an invariant checker running alongside — the substrate of
// the philosophers and stm-bench7 benchmarks.
package main

import (
	"fmt"
	"sync"

	"renaissance/internal/stm"
)

func main() {
	const accounts = 16
	const initial = 1000
	refs := make([]*stm.Ref, accounts)
	for i := range refs {
		refs[i] = stm.NewRef(initial)
	}

	var wg sync.WaitGroup
	for worker := 0; worker < 4; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			state := uint64(worker + 1)
			next := func(n int) int {
				state = state*6364136223846793005 + 1442695040888963407
				return int((state >> 33) % uint64(n))
			}
			for i := 0; i < 2000; i++ {
				from, to := next(accounts), next(accounts)
				if from == to {
					continue
				}
				amount := next(50) + 1
				_ = stm.Atomically(func(tx *stm.Tx) error {
					balance := tx.Read(refs[from]).(int)
					if balance < amount {
						return nil // insufficient funds: commit no change
					}
					tx.Write(refs[from], balance-amount)
					tx.Write(refs[to], tx.Read(refs[to]).(int)+amount)
					return nil
				})
			}
		}(worker)
	}

	// Concurrent invariant reader: every snapshot must sum to the total.
	stop := make(chan struct{})
	var checker sync.WaitGroup
	checker.Add(1)
	violations := 0
	snapshots := 0
	go func() {
		defer checker.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			total := 0
			_ = stm.Atomically(func(tx *stm.Tx) error {
				total = 0
				for _, r := range refs {
					total += tx.Read(r).(int)
				}
				return nil
			})
			snapshots++
			if total != accounts*initial {
				violations++
			}
		}
	}()

	wg.Wait()
	close(stop)
	checker.Wait()

	final := 0
	fmt.Println("final balances:")
	for i, r := range refs {
		b := stm.ReadAtomic(r).(int)
		final += b
		fmt.Printf("  account %2d: %5d\n", i, b)
	}
	fmt.Printf("\ntotal %d (expected %d), %d consistent snapshots, %d violations\n",
		final, accounts*initial, snapshots, violations)
	if final != accounts*initial || violations > 0 {
		fmt.Println("INVARIANT BROKEN")
	} else {
		fmt.Println("invariant held under concurrency")
	}
}
