// Chatroom: the actor runtime hosting a chat service — a room actor
// broadcasting to member actors, with an ask-pattern query at the end.
// This is the message-passing substrate behind akka-uct and reactors.
package main

import (
	"fmt"
	"sort"
	"sync"

	"renaissance/internal/actors"
)

type join struct{ member *actors.Ref }
type post struct {
	from string
	text string
}
type transcriptQuery struct{}

func main() {
	sys := actors.NewSystem(4)
	defer sys.Shutdown()

	// The room broadcasts posts to every member and keeps a transcript.
	var members []*actors.Ref
	var transcript []string
	room := sys.Spawn("room", actors.ReceiverFunc(func(ctx *actors.Context, msg any) {
		switch m := msg.(type) {
		case join:
			members = append(members, m.member)
		case post:
			transcript = append(transcript, m.from+": "+m.text)
			for _, member := range members {
				ctx.Send(member, m) // worker-local fast path
			}
		case transcriptQuery:
			ctx.Reply(append([]string(nil), transcript...))
		}
	}))

	// Members count what they receive.
	var mu sync.Mutex
	received := map[string]int{}
	for _, name := range []string{"ada", "grace", "barbara"} {
		name := name
		member := sys.Spawn(name, actors.ReceiverFunc(func(ctx *actors.Context, msg any) {
			mu.Lock()
			received[name]++
			mu.Unlock()
		}))
		room.Tell(join{member})
	}
	sys.AwaitQuiescence()

	for i := 0; i < 5; i++ {
		room.Tell(post{from: "ada", text: fmt.Sprintf("message %d", i)})
	}
	sys.AwaitQuiescence()

	// Ask the room for the transcript.
	reply := <-room.Ask(transcriptQuery{})
	fmt.Println("transcript:")
	for _, line := range reply.([]string) {
		fmt.Println("  " + line)
	}
	fmt.Println("deliveries per member:")
	mu.Lock()
	var names []string
	for n := range received {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-8s %d\n", n, received[n])
	}
	mu.Unlock()
}
