// Quickstart: register a custom benchmark in the harness, run it with a
// measurement plugin attached, and print its metric profile — the
// "easily add new benchmarks" and "custom measurement plugins" workflow of
// the paper's harness (§2.2).
package main

import (
	"fmt"
	"log"
	"sort"

	"renaissance/internal/core"
	"renaissance/internal/metrics"
	"renaissance/internal/streams"
)

// wordLengths is the benchmark body: a stream pipeline grouping words by
// length (closure dispatch shows up in the idynamic metric).
func wordLengths(words []string) map[int][]string {
	return streams.GroupBy(streams.FromSlice(words), func(w string) int { return len(w) })
}

// iterationLogger is a measurement plugin latching onto execution events.
type iterationLogger struct {
	core.Base
	iterations int
}

func (p *iterationLogger) AfterIteration(ev core.IterationEvent) {
	p.iterations++
	phase := "steady"
	if ev.Warmup {
		phase = "warmup"
	}
	fmt.Printf("  [%s] iteration %d of %s took %v\n", phase, ev.Index, ev.Benchmark, ev.Duration)
}

func main() {
	// 1. Register a benchmark.
	core.Register(core.Spec{
		Name:        "word-lengths",
		Suite:       "examples",
		Description: "Group a word list by length with the streams library.",
		Focus:       []string{"data-parallel"},
		Warmup:      1,
		Measured:    3,
		Setup: func(cfg core.Config) (core.Workload, error) {
			words := make([]string, cfg.Scale(50000))
			for i := range words {
				words[i] = fmt.Sprintf("w%0*d", i%9+1, i)
			}
			return core.WorkloadFunc(func() error {
				groups := wordLengths(words)
				if len(groups) == 0 {
					return fmt.Errorf("no groups")
				}
				return nil
			}), nil
		},
	})

	// 2. Run it with a plugin attached.
	spec, _ := core.Global.Lookup("examples", "word-lengths")
	runner := core.NewRunner()
	logger := &iterationLogger{}
	runner.Use(logger)
	fmt.Println("running word-lengths:")
	res, err := runner.Run(spec)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the results and the metric profile.
	fmt.Printf("\nmean steady-state iteration: %.2f ms over %d iterations\n",
		res.MeanMillis(), len(res.Durations))
	fmt.Println("metric profile (normalized rates per 10^9 reference cycles):")
	type row struct {
		name string
		rate float64
	}
	var rows []row
	for _, m := range metrics.AllMetrics() {
		if m == metrics.CPU {
			continue
		}
		rows = append(rows, row{m.String(), res.Profile.Rate(m) * 1e9})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].rate > rows[j].rate })
	for _, r := range rows {
		fmt.Printf("  %-10s %12.1f\n", r.name, r.rate)
	}
}
