// Minijit: compile a minilang program through the full RVM pipeline,
// inspect the IR before and after optimization, and compare the baseline
// and optimizing pipelines under the deterministic cycle cost model — the
// §5/§6 methodology on one small program.
package main

import (
	"fmt"
	"log"

	"renaissance/internal/minilang"
	"renaissance/internal/rvm/ir"
	"renaissance/internal/rvm/jit"
	"renaissance/internal/rvm/opt"
)

const src = `
func scale(x int) int { return x * 3 + 1; }

func sum(n int) int {
	var acc = 0;
	var i = 0;
	while i < n {
		acc = acc + scale(i);
		i = i + 1;
	}
	return acc;
}

func main() int { return sum(2000); }
`

func main() {
	prog, err := minilang.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// Show the unoptimized IR of main.
	raw, err := ir.BuildProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== unoptimized IR of ML.sum ===")
	fmt.Println(raw.Funcs["ML.sum"])

	// Compile under both pipelines and compare.
	for _, pipe := range []*opt.Pipeline{opt.BaselinePipeline(), opt.OptPipeline()} {
		c, err := jit.Compile(prog, pipe)
		if err != nil {
			log.Fatal(err)
		}
		v, stats, err := c.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== pipeline %-8s  result=%v  cycles=%-8d  instrs=%-8d  codesize=%d ===\n",
			pipe.Name, v, stats.Cycles, stats.Executed, c.CodeSize)
		if pipe.Name == "opt" {
			fmt.Println("\n=== optimized IR of ML.sum (call to scale inlined) ===")
			fmt.Println(c.Prog.Funcs["ML.sum"])
			fmt.Println("hottest methods:")
			for i, h := range c.HotMethods(stats) {
				if i >= 3 {
					break
				}
				fmt.Printf("  %-12s %8d cycles over %d calls\n", h.Name, h.Cycles, h.Calls)
			}
		}
	}
}
