// Wordcount: the data-parallel RDD engine on the canonical word-count and
// page-rank pipelines — the workloads the paper's Spark-based benchmarks
// (als, page-rank, ...) are built from.
package main

import (
	"fmt"
	"sort"
	"strings"

	"renaissance/internal/rdd"
)

func main() {
	text := strings.Repeat(
		"the renaissance suite measures parallel applications "+
			"the suite measures concurrency the applications use ", 2000)

	// Word count: flatMap -> map -> reduceByKey, evaluated across 8
	// partitions with a hash shuffle.
	lines := rdd.Parallelize(strings.Split(text, " "), 8)
	pairs := rdd.Map(lines.Filter(func(w string) bool { return w != "" }),
		func(w string) rdd.Pair[string, int] { return rdd.KV(w, 1) })
	counts := rdd.CollectAsMap(rdd.ReduceByKey(pairs, 8, func(a, b int) int { return a + b }))

	type wc struct {
		word string
		n    int
	}
	var tops []wc
	for w, n := range counts {
		tops = append(tops, wc{w, n})
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].n != tops[j].n {
			return tops[i].n > tops[j].n
		}
		return tops[i].word < tops[j].word
	})
	fmt.Println("top words:")
	for i, t := range tops {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-12s %d\n", t.word, t.n)
	}

	// PageRank over a small link graph of the same engine.
	edges := []rdd.Pair[int, int]{
		rdd.KV(1, 2), rdd.KV(1, 3), rdd.KV(2, 3), rdd.KV(3, 1),
		rdd.KV(4, 3), rdd.KV(4, 1), rdd.KV(5, 3),
	}
	ranks := rdd.PageRank(rdd.Parallelize(edges, 4), 20, 0.85)
	fmt.Println("\npage ranks (vertex 3 should dominate):")
	var vs []int
	for v := range ranks {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	for _, v := range vs {
		fmt.Printf("  vertex %d: %.3f\n", v, ranks[v])
	}
}
