# Build/verify entry points. `make check` is the gate every change must
# pass: vet, build, the full test suite, and the race detector over the
# packages with lock-free and sharded concurrent code (metrics, forkjoin,
# stm), which ordinary `go test` does not exercise under -race.

GO ?= go

RACE_PKGS = ./internal/metrics ./internal/forkjoin ./internal/stm ./internal/core ./internal/netstack ./internal/futures

# The fault-tolerance tests: harness panic/timeout isolation, netstack
# drain/close, client retry and close races. `make stress` shakes them
# under the race detector repeatedly to catch rare interleavings.
STRESS_RUN = 'Close|Drain|Timeout|Race|Panic|Retry|Fault|Discard'
STRESS_PKGS = ./internal/core ./internal/netstack ./internal/futures

.PHONY: check vet build test race stress bench bench-contention analyze

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

stress:
	$(GO) test -race -count=5 -run $(STRESS_RUN) $(STRESS_PKGS)

# Contention benchmarks: flat vs sharded recorder, mutex vs Chase–Lev
# deque, at 1/2/4/8 virtual CPUs (see EXPERIMENTS.md "Profiler
# perturbation").
bench-contention:
	$(GO) test -run '^$$' -bench 'Recorder|Snapshot' -cpu 1,2,4,8 ./internal/metrics
	$(GO) test -run '^$$' -bench 'Deque' -cpu 1,2,4,8 ./internal/forkjoin

bench:
	$(GO) test -run '^$$' -bench . ./...

analyze:
	$(GO) run ./cmd/analyze all
