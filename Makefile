# Build/verify entry points. `make check` is the gate every change must
# pass: vet, build, the full test suite, and the race detector over the
# packages with lock-free and sharded concurrent code (metrics, forkjoin,
# stm), which ordinary `go test` does not exercise under -race.

GO ?= go

RACE_PKGS = ./internal/metrics ./internal/forkjoin ./internal/stm ./internal/core ./internal/netstack ./internal/futures ./internal/rdd ./internal/lin ./internal/streams ./internal/actors ./internal/rx ./internal/mpsc ./internal/rvm ./internal/rvm/opt ./internal/hdr ./internal/loadgen

# The fault-tolerance and engine-concurrency tests: harness panic/timeout
# isolation, netstack drain/close/breaker/shedding, client retry and close
# races, the data-parallel engine's executor/shuffle/fused-action
# interleavings, the actor runtime's shutdown/quiescence/fairness/steal
# races, and the supervision fault domains (restart/escalation/dead
# letters, plus the MPSC queue and rx scheduler close races). `make
# stress` shakes them under the race detector repeatedly to catch rare
# interleavings; the rvm tier-up differential fuzz (tier-0 vs quickened
# execution over the random bytecode corpus) rides along so the
# interpreter tiers stay bit-identical under the race detector too, as
# does the STM adversarial suite (lost-wakeup, opacity, timestamp
# extension differential vs a global-lock reference) and the RDD lineage
# recovery suite (recompute vs concurrent actions on a shared cache,
# retry-budget exhaustion, shuffle epoch retries, speculative-duplicate
# suppression, checkpoint truncation).
STRESS_RUN = 'Close|Drain|Timeout|Race|Racing|Panic|Retry|Fault|Discard|Exchange|Executor|Fused|Nested|Quiesce|Flood|Steal|Registry|Scheduler|Queue|Mailbox|Ask|Restart|Resume|Escalation|DeadLetter|Breaker|Shed|Tier|Quicken|Admission|Backoff|Concurrent|Outstanding|Opacity|Wakeup|Extension|Differential|Cholesky|Recompute|Speculative|Epoch|Checkpoint|Budget|Lineage'
STRESS_PKGS = ./internal/core ./internal/netstack ./internal/futures ./internal/rdd ./internal/forkjoin ./internal/actors ./internal/rx ./internal/mpsc ./internal/streams ./internal/rvm ./internal/rvm/opt ./internal/hdr ./internal/loadgen ./internal/stm

.PHONY: check vet build test race stress chaos bench bench-all bench-ci bench-contention analyze

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

stress:
	$(GO) test -race -count=5 -run $(STRESS_RUN) $(STRESS_PKGS)

# Chaos sweep: run the renaissance suite with seeded fault injection at
# every registered injection point and assert clean degradation — every
# benchmark must end in a terminal status (ok/error/timeout/panic) and the
# harness must exit 0 (all clean) or 1 (some benchmarks degraded), never
# crash. Seeds are pinned so failures reproduce; set CHAOS_RACE=-race to
# run under the race detector (CI does).
CHAOS_SEEDS ?= 1 7
CHAOS_RATE  ?= 0.02
CHAOS_RACE  ?=
chaos:
	@for seed in $(CHAOS_SEEDS); do \
		echo "== chaos sweep: seed=$$seed rate=$(CHAOS_RATE) =="; \
		$(GO) run $(CHAOS_RACE) ./cmd/renaissance run -suite renaissance \
			-size 0.1 -warmup 1 -measured 1 -timeout 30s -retries 1 \
			-chaos.seed $$seed -chaos.rate $(CHAOS_RATE) -chaos.stats; \
		code=$$?; \
		if [ $$code -gt 1 ]; then \
			echo "chaos sweep crashed (exit $$code) at seed $$seed"; exit $$code; \
		fi; \
	done; echo "chaos sweeps completed with terminal statuses"

# Contention benchmarks: flat vs sharded recorder, mutex vs Chase–Lev
# deque, at 1/2/4/8 virtual CPUs (see EXPERIMENTS.md "Profiler
# perturbation").
bench-contention:
	$(GO) test -run '^$$' -bench 'Recorder|Snapshot' -cpu 1,2,4,8 ./internal/metrics
	$(GO) test -run '^$$' -bench 'Deque' -cpu 1,2,4,8 ./internal/forkjoin

# Data-parallel engine benchmarks: fused pipeline vs per-stage
# materialization, lock-free shuffle exchange vs the mutex baseline, and
# executor fan-out vs goroutine-per-task, at 1/2/4/8 virtual CPUs (see
# EXPERIMENTS.md "Data-parallel engine"). Output is teed to BENCH_*.txt
# so runs can be diffed with benchstat-style tooling.
bench:
	$(GO) test -run '^$$' -bench 'FusedVsMaterialized|LockedVsExchange|RecoveryOverhead' -benchmem -cpu 1,2,4,8 ./internal/rdd | tee BENCH_rdd.txt
	$(GO) test -run '^$$' -bench 'FanOut' -benchmem -cpu 1,2,4,8 ./internal/forkjoin | tee BENCH_forkjoin.txt
	$(GO) test -run '^$$' -bench 'ActorPingPong|ActorFanIn|ActorSpawnStorm|ActorAsk' -benchmem -cpu 1,2,4,8 ./internal/actors | tee BENCH_actors.txt
	$(GO) test -run '^$$' -bench 'Dispatch|InlineCache|ArrayLoop' -benchmem -cpu 1 ./internal/rvm | tee BENCH_rvm.txt
	$(GO) test -run '^$$' -bench 'CommitNoWaiters|RetryWakeup|ReadOnlyTraversal|PhilosophersE2E|STMBench7E2E' -benchmem -cpu 1,2,4,8 ./internal/stm | tee BENCH_stm.txt
	$(GO) test -run '^$$' -bench '^BenchmarkML' -benchmem -cpu 1,2,4,8 ./internal/rdd | tee BENCH_ml.txt

# One-iteration smoke pass over the engine benchmarks for CI: proves they
# still compile and run without paying full measurement time.
bench-ci:
	$(GO) test -run '^$$' -bench 'FusedVsMaterialized|LockedVsExchange|RecoveryOverhead|FanOut' -benchtime 1x -benchmem ./internal/rdd ./internal/forkjoin
	$(GO) test -run '^$$' -bench 'ActorPingPong|ActorFanIn|ActorSpawnStorm|ActorAsk' -benchtime 1x -benchmem ./internal/actors
	$(GO) test -run '^$$' -bench 'Dispatch|InlineCache|ArrayLoop' -benchtime 1x -benchmem -cpu 1 ./internal/rvm
	$(GO) test -run '^$$' -bench 'CommitNoWaiters|RetryWakeup|ReadOnlyTraversal|PhilosophersE2E|STMBench7E2E' -benchtime 1x -benchmem ./internal/stm
	$(GO) test -run '^$$' -bench '^BenchmarkML' -benchtime 1x -benchmem ./internal/rdd
	$(GO) run ./cmd/renaissance run -bench finagle-chirper -openloop.rate 200 -openloop.duration 500ms

# Every benchmark in the repo (paper figures included); slow.
bench-all:
	$(GO) test -run '^$$' -bench . ./...

analyze:
	$(GO) run ./cmd/analyze all
