# Build/verify entry points. `make check` is the gate every change must
# pass: vet, build, the full test suite, and the race detector over the
# packages with lock-free and sharded concurrent code (metrics, forkjoin,
# stm), which ordinary `go test` does not exercise under -race.

GO ?= go

RACE_PKGS = ./internal/metrics ./internal/forkjoin ./internal/stm

.PHONY: check vet build test race bench bench-contention analyze

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# Contention benchmarks: flat vs sharded recorder, mutex vs Chase–Lev
# deque, at 1/2/4/8 virtual CPUs (see EXPERIMENTS.md "Profiler
# perturbation").
bench-contention:
	$(GO) test -run '^$$' -bench 'Recorder|Snapshot' -cpu 1,2,4,8 ./internal/metrics
	$(GO) test -run '^$$' -bench 'Deque' -cpu 1,2,4,8 ./internal/forkjoin

bench:
	$(GO) test -run '^$$' -bench . ./...

analyze:
	$(GO) run ./cmd/analyze all
