module renaissance

go 1.22
