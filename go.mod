module renaissance

go 1.24
