// Command analyze regenerates every table and figure of the paper's
// evaluation: the Table 1 inventory, the Table 7 metric profiles, the
// Table 3 / Figure 1 PCA, the Figure 2–4 metric-rate charts, the Figure 5
// optimization-impact matrix with Tables 12–15, the Figure 6 compiler
// comparison, the Figure 7 code-size profile, the Table 16 compilation
// times, the §5.4/§5.5 drill-down tables, and the §7 CK complexity
// analysis.
//
// Usage: analyze [subcommand], where subcommand is one of
// table1, table7, pca, rates, impact, compilers, codesize, comptime,
// guards, mhs-hot, ck, classes, or all (default).
package main

import (
	"fmt"
	"os"
	"sort"

	"renaissance/internal/ck"
	"renaissance/internal/core"
	"renaissance/internal/experiments"
	"renaissance/internal/metrics"
	"renaissance/internal/report"
	"renaissance/internal/rvm/kernels"
)

// sizeFactor keeps the native-workload profiling pass quick; the kernel
// experiments use their own scale.
const sizeFactor = 0.3

func main() {
	cmd := "all"
	if len(os.Args) > 1 {
		cmd = os.Args[1]
	}
	steps := map[string]func() error{
		"table1":    table1,
		"table7":    table7,
		"pca":       pcaStep,
		"rates":     rates,
		"impact":    impact,
		"compilers": compilers,
		"codesize":  codesize,
		"comptime":  comptime,
		"guards":    guards,
		"mhs-hot":   mhsHot,
		"ck":        ckStep,
		"classes":   classes,
		"cache":     cacheStep,
	}
	run := func(name string) {
		if err := steps[name](); err != nil {
			fmt.Fprintf(os.Stderr, "analyze %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if cmd == "all" {
		order := []string{"table1", "table7", "pca", "rates", "impact",
			"compilers", "codesize", "comptime", "guards", "mhs-hot", "cache", "ck", "classes"}
		for _, name := range order {
			run(name)
		}
		return
	}
	if _, ok := steps[cmd]; !ok {
		fmt.Fprintf(os.Stderr, "analyze: unknown subcommand %q\n", cmd)
		os.Exit(2)
	}
	run(cmd)
}

var cachedProfiles []*metrics.Profile

func profiles() ([]*metrics.Profile, error) {
	if cachedProfiles == nil {
		ps, err := experiments.CollectProfiles(sizeFactor)
		if err != nil {
			return nil, err
		}
		cachedProfiles = ps
	}
	return cachedProfiles, nil
}

func table1() error {
	return experiments.Table1().Write(os.Stdout)
}

func table7() error {
	ps, err := profiles()
	if err != nil {
		return err
	}
	return experiments.Table7(ps).Write(os.Stdout)
}

func pcaStep() error {
	ps, err := profiles()
	if err != nil {
		return err
	}
	d, err := experiments.Analyze(ps)
	if err != nil {
		return err
	}
	fmt.Printf("PCA over %d benchmarks x %d metrics; first 4 PCs explain %.0f%% of variance\n\n",
		len(ps), len(d.Metrics), 100*d.ExplainedVariance(4))
	if err := d.LoadingsTable(4).Write(os.Stdout); err != nil {
		return err
	}
	if err := report.Scatter(os.Stdout, "Figure 1(a): PC1 vs PC2  [R=renaissance d=dacapo-like s=scalabench-like j=specjvm-like]",
		"PC1", "PC2", d.ScatterPoints(0, 1), 72, 20); err != nil {
		return err
	}
	if err := report.Scatter(os.Stdout, "Figure 1(b): PC3 vs PC4",
		"PC3", "PC4", d.ScatterPoints(2, 3), 72, 20); err != nil {
		return err
	}
	t := &report.Table{Title: "Suite score spread per PC (range of scores)",
		Headers: []string{"suite", "PC1", "PC2", "PC3", "PC4"}}
	for _, suite := range []string{core.SuiteRenaissance, core.SuiteOO, core.SuiteFn, core.SuiteClassic} {
		row := []any{suite}
		for c := 0; c < 4; c++ {
			row = append(row, fmt.Sprintf("%.2f", d.SuiteSpread(c)[suite]))
		}
		t.AddRow(row...)
	}
	return t.Write(os.Stdout)
}

func rates() error {
	ps, err := profiles()
	if err != nil {
		return err
	}
	figures := []struct {
		title  string
		metric metrics.Metric
	}{
		{"Figure 2: atomic operations per 10^9 reference cycles", metrics.Atomic},
		{"Figure 3: synchronized sections per 10^9 reference cycles", metrics.Synch},
		{"Figure 4: invokedynamic analogues per 10^9 reference cycles", metrics.IDynamic},
	}
	for _, f := range figures {
		bars := experiments.RateBars(ps, f.metric)
		report.SortBarsDesc(bars)
		if len(bars) > 25 {
			bars = bars[:25] // top entries; the tail is near zero
		}
		if err := report.BarChart(os.Stdout, f.title+" (top 25)", bars, 40); err != nil {
			return err
		}
	}
	return nil
}

func impact() error {
	cells, err := experiments.MeasureImpacts(3, 12)
	if err != nil {
		return err
	}
	for _, suite := range []string{kernels.SuiteRenaissance, kernels.SuiteDaCapo,
		kernels.SuiteScalaBench, kernels.SuiteSPECjvm} {
		if err := experiments.ImpactTable(cells, suite).Write(os.Stdout); err != nil {
			return err
		}
	}
	t := &report.Table{Title: "Figure 5 summary: optimizations with >=5% impact (alpha=0.01 on wall time)",
		Headers: []string{"suite", "opts with impact (of 7)", "median significant impact"}}
	for _, s := range experiments.Summarize(cells, 0.05, 0.01) {
		t.AddRow(experiments.KernelSuiteLabels[s.Suite], s.OptsWithImpact,
			fmt.Sprintf("%.1f%%", 100*s.MedianImpact))
	}
	return t.Write(os.Stdout)
}

func compilers() error {
	rows, err := experiments.CompareCompilers(3, 8)
	if err != nil {
		return err
	}
	var bars []report.Bar
	wins, losses := 0, 0
	for _, r := range rows {
		mark := ""
		if r.CILo > 1 || r.CIHi < 1 {
			mark = "*"
		}
		if r.Speedup > 1 {
			wins++
		} else if r.Speedup < 1 {
			losses++
		}
		bars = append(bars, report.Bar{
			Label: r.Suite + "/" + r.Benchmark,
			Value: r.Speedup,
			Mark:  mark,
		})
	}
	sort.Slice(bars, func(i, j int) bool { return bars[i].Label < bars[j].Label })
	if err := report.BarChart(os.Stdout,
		"Figure 6: opt-pipeline speedup over baseline pipeline (cycles; * = 99% CI excludes 1.0)",
		bars, 40); err != nil {
		return err
	}
	fmt.Printf("opt pipeline faster on %d/%d kernels, slower on %d\n\n", wins, len(rows), losses)
	return nil
}

func codesize() error {
	rows, err := experiments.CodeSizes(2)
	if err != nil {
		return err
	}
	t := &report.Table{Title: "Figure 7: hot compiled-code size and hot-method count (opt pipeline)",
		Headers: []string{"suite", "kernel", "hot IR instrs", "hot methods"}}
	perSuite := map[string][]float64{}
	for _, r := range rows {
		t.AddRow(r.Suite, r.Benchmark, r.HotSize, r.HotMethods)
		perSuite[r.Suite] = append(perSuite[r.Suite], float64(r.HotSize))
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}
	sumT := &report.Table{Title: "Per-suite average hot code size",
		Headers: []string{"suite", "avg hot IR instrs"}}
	var suites []string
	for s := range perSuite {
		suites = append(suites, s)
	}
	sort.Strings(suites)
	for _, s := range suites {
		total := 0.0
		for _, v := range perSuite[s] {
			total += v
		}
		sumT.AddRow(experiments.KernelSuiteLabels[s], fmt.Sprintf("%.0f", total/float64(len(perSuite[s]))))
	}
	return sumT.Write(os.Stdout)
}

func comptime() error {
	deltas, err := experiments.CompileTimeDelta(2)
	if err != nil {
		return err
	}
	t := &report.Table{Title: "Table 16: compilation-time reduction when each optimization is disabled (all kernels)",
		Headers: []string{"optimization", "compile-time change"}}
	var names []string
	for n := range deltas {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t.AddRow(n, fmt.Sprintf("%.1f%%", 100*deltas[n]))
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}

	shares, err := experiments.CompileTimes(2)
	if err != nil {
		return err
	}
	t2 := &report.Table{Title: "Per-pass share of total pipeline time",
		Headers: []string{"pass", "share"}}
	names = names[:0]
	for n := range shares {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t2.AddRow(n, fmt.Sprintf("%.1f%%", 100*shares[n]))
	}
	return t2.Write(os.Stdout)
}

func guards() error {
	with, without, err := experiments.GuardProfile(2)
	if err != nil {
		return err
	}
	render := func(title string, m map[string]int64) error {
		total := int64(0)
		for _, v := range m {
			total += v
		}
		t := &report.Table{Title: title, Headers: []string{"guard type", "executions", "share"}}
		var keys []string
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return m[keys[i]] < m[keys[j]] })
		for _, k := range keys {
			t.AddRow(k, m[k], fmt.Sprintf("%.0f%%", 100*float64(m[k])/float64(total)))
		}
		t.AddRow("Total", total, "100%")
		return t.Write(os.Stdout)
	}
	if err := render("Guards executed WITHOUT speculative guard motion (log-regression kernel)", without); err != nil {
		return err
	}
	return render("Guards executed WITH speculative guard motion", with)
}

func mhsHot() error {
	with, without, err := experiments.MHSMethodProfile(2)
	if err != nil {
		return err
	}
	t := &report.Table{Title: "Hottest methods of the scrabble kernel (cycles), with vs without MHS",
		Headers: []string{"method", "with", "w/o"}}
	woCycles := map[string]int64{}
	var withTotal, woTotal int64
	for _, h := range without {
		woCycles[h.Name] = h.Cycles
		woTotal += h.Cycles
	}
	for _, h := range with {
		withTotal += h.Cycles
	}
	t.AddRow("<total>", withTotal, woTotal)
	for i, h := range with {
		if i >= 6 {
			break
		}
		t.AddRow(h.Name, h.Cycles, woCycles[h.Name])
	}
	return t.Write(os.Stdout)
}

func ckStep() error {
	dirs := experiments.SuiteSourceDirs(".")
	t := &report.Table{Title: "Table 4: CK metrics per suite (sum / average over analyzed types)",
		Headers: []string{"suite", "types", "WMC", "DIT", "CBO", "NOC", "RFC", "LCOM",
			"avgWMC", "avgDIT", "avgCBO", "avgNOC", "avgRFC", "avgLCOM"}}
	var suites []string
	for s := range dirs {
		suites = append(suites, s)
	}
	sort.Strings(suites)
	for _, suite := range suites {
		rep, err := ck.AnalyzeDirs(dirs[suite])
		if err != nil {
			return err
		}
		s := rep.Summarize()
		t.AddRow(suite, s.N, s.Sum.WMC, s.Sum.DIT, s.Sum.CBO, s.Sum.NOC, s.Sum.RFC, s.Sum.LCOM,
			fmt.Sprintf("%.1f", s.Avg[0]), fmt.Sprintf("%.2f", s.Avg[1]),
			fmt.Sprintf("%.1f", s.Avg[2]), fmt.Sprintf("%.2f", s.Avg[3]),
			fmt.Sprintf("%.1f", s.Avg[4]), fmt.Sprintf("%.1f", s.Avg[5]))
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}

	// Per-package detail, the Tables 8–11 analogue.
	detail := &report.Table{Title: "Tables 8-11 analogue: CK sums per package",
		Headers: []string{"package", "types", "WMC", "DIT", "CBO", "NOC", "RFC", "LCOM"}}
	seen := map[string]bool{}
	var allDirs []string
	for _, ds := range dirs {
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				allDirs = append(allDirs, d)
			}
		}
	}
	sort.Strings(allDirs)
	for _, d := range allDirs {
		rep, err := ck.AnalyzeDirs([]string{d})
		if err != nil {
			return err
		}
		s := rep.Summarize()
		detail.AddRow(d, s.N, s.Sum.WMC, s.Sum.DIT, s.Sum.CBO, s.Sum.NOC, s.Sum.RFC, s.Sum.LCOM)
	}
	return detail.Write(os.Stdout)
}

func classes() error {
	dirs := experiments.SuiteSourceDirs(".")
	t := &report.Table{Title: "Table 5: analyzed types per suite (loaded-classes analogue)",
		Headers: []string{"suite", "types"}}
	var suites []string
	for s := range dirs {
		suites = append(suites, s)
	}
	sort.Strings(suites)
	for _, suite := range suites {
		rep, err := ck.AnalyzeDirs(dirs[suite])
		if err != nil {
			return err
		}
		t.AddRow(suite, rep.TypeCount)
	}
	return t.Write(os.Stdout)
}

func cacheStep() error {
	t := &report.Table{Title: "Simulated cache behavior of representative kernels (opt pipeline)",
		Headers: []string{"kernel", "L1D acc", "L1D miss", "LLC miss", "DTLB miss"}}
	for _, k := range []struct{ suite, name string }{
		{kernels.SuiteRenaissance, "fj-kmeans"},
		{kernels.SuiteRenaissance, "als"},
		{kernels.SuiteRenaissance, "scrabble"},
		{kernels.SuiteSPECjvm, "scimark.lu.small"},
		{kernels.SuiteSPECjvm, "scimark.fft.small"},
		{kernels.SuiteDaCapo, "eclipse"},
	} {
		counts, err := experiments.KernelCacheProfile(k.suite, k.name, 1)
		if err != nil {
			return err
		}
		t.AddRow(k.suite+"/"+k.name,
			counts["L1D"][0], counts["L1D"][1], counts["LLC"][1], counts["DTLB"][1])
	}
	return t.Write(os.Stdout)
}
