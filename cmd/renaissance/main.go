// Command renaissance is the benchmark harness CLI: it lists and runs the
// workloads of the four suites, prints their metric profiles, and emits
// JSON results — the role of the paper's harness (§2.2).
//
// Usage:
//
//	renaissance list [-suite name]
//	renaissance run [-suite name] [-bench name] [-size f] [-warmup n] [-measured n] [-json]
//	renaissance metrics
package main

import (
	"flag"
	"fmt"
	"os"

	"renaissance/internal/core"
	"renaissance/internal/metrics"
	"renaissance/internal/report"
	"renaissance/internal/stats"

	_ "renaissance/internal/bench/classic"
	_ "renaissance/internal/bench/fn"
	_ "renaissance/internal/bench/oo"
	_ "renaissance/internal/bench/renaissance"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "metrics":
		err = cmdMetrics()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "renaissance:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  renaissance list [-suite name]
  renaissance run [-suite name] [-bench name] [-size f] [-warmup n] [-measured n] [-json]
  renaissance metrics`)
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	suite := fs.String("suite", "", "only list this suite")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t := &report.Table{Headers: []string{"suite", "benchmark", "focus", "description"}}
	for _, s := range core.Global.All() {
		if *suite != "" && s.Suite != *suite {
			continue
		}
		focus := ""
		for i, f := range s.Focus {
			if i > 0 {
				focus += ", "
			}
			focus += f
		}
		t.AddRow(s.Suite, s.Name, focus, s.Description)
	}
	return t.Write(os.Stdout)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	suite := fs.String("suite", "", "only run this suite")
	bench := fs.String("bench", "", "only run this benchmark")
	size := fs.Float64("size", 1.0, "workload size factor")
	warmup := fs.Int("warmup", 0, "override warmup iterations")
	measured := fs.Int("measured", 0, "override measured iterations")
	asJSON := fs.Bool("json", false, "emit JSON results")
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := core.NewRunner()
	r.Config.SizeFactor = *size
	r.WarmupOverride = *warmup
	r.MeasuredOverride = *measured

	var specs []*core.Spec
	for _, s := range core.Global.All() {
		if *suite != "" && s.Suite != *suite {
			continue
		}
		if *bench != "" && s.Name != *bench {
			continue
		}
		specs = append(specs, s)
	}
	if len(specs) == 0 {
		return fmt.Errorf("no benchmarks match suite=%q bench=%q", *suite, *bench)
	}

	t := &report.Table{Headers: []string{"suite", "benchmark", "mean ms", "99% CI", "min ms", "max ms", "validated"}}
	for _, s := range specs {
		res, err := r.Run(s)
		if err != nil {
			return err
		}
		if *asJSON {
			if err := res.WriteJSON(os.Stdout); err != nil {
				return err
			}
			continue
		}
		sum := res.Summary()
		ci := "n/a"
		if mean, hw, err := stats.MeanCI(res.Durations, 0.99); err == nil {
			ci = fmt.Sprintf("±%.2f", hw)
			_ = mean
		}
		t.AddRow(s.Suite, s.Name,
			fmt.Sprintf("%.2f", sum.Mean), ci, fmt.Sprintf("%.2f", sum.Min),
			fmt.Sprintf("%.2f", sum.Max), res.Validated)
	}
	if *asJSON {
		return nil
	}
	return t.Write(os.Stdout)
}

func cmdMetrics() error {
	desc := map[metrics.Metric]string{
		metrics.Synch:     "synchronized (mutex-guarded) sections executed",
		metrics.Wait:      "guarded-block waits (Object.wait analogues)",
		metrics.Notify:    "condition signals (Object.notify analogues)",
		metrics.Atomic:    "atomic memory operations executed",
		metrics.Park:      "goroutine park operations",
		metrics.CPU:       "average CPU utilization (sampled, %)",
		metrics.CacheMiss: "cache misses (simulated / allocation proxy)",
		metrics.Object:    "objects allocated",
		metrics.Array:     "arrays (slices) allocated",
		metrics.Method:    "dynamically dispatched calls",
		metrics.IDynamic:  "closure dispatches (invokedynamic analogues)",
	}
	t := &report.Table{Title: "Table 2: characterizing metrics", Headers: []string{"name", "description"}}
	for _, m := range metrics.AllMetrics() {
		t.AddRow(m.String(), desc[m])
	}
	return t.Write(os.Stdout)
}
