// Command renaissance is the benchmark harness CLI: it lists and runs the
// workloads of the four suites, prints their metric profiles, and emits
// JSON results — the role of the paper's harness (§2.2).
//
// Usage:
//
//	renaissance list [-suite name]
//	renaissance run [-suite name] [-bench name] [-size f] [-warmup n] [-measured n]
//	                [-timeout d] [-retries n] [-fault spec]
//	                [-chaos.seed n] [-chaos.rate f] [-chaos.stats] [-json]
//	                [-rdd.retries n] [-rdd.speculate]
//	                [-rvm.tier auto|0|1] [-rvm.profile]
//	                [-openloop.rate r] [-openloop.sweep r1,r2,...] [-openloop.duration d]
//	renaissance metrics
//
// With -openloop.rate or -openloop.sweep, matching benchmarks that
// register an open-loop target run under the coordinated-omission-safe
// load generator instead of the iteration harness: offered load follows a
// seeded Poisson schedule (deterministic per -chaos.seed), latency is
// measured from intended send times into HDR histograms, and a sweep
// reports the saturation knee where p99 diverges from p50.
//
// The RDD engine recovers from partition faults by lineage recompute:
// -rdd.retries bounds the per-partition recompute budget, -rdd.speculate
// enables straggler speculation, and -chaos.stats dumps each chaos
// point's trial/fire counts after the run so a chaos sweep's coverage is
// auditable.
//
// Runs degrade gracefully: a benchmark that fails, panics, or exceeds its
// deadline is recorded with its status and the sweep continues; the exit
// summary tallies statuses and the exit code is non-zero if any run was
// not ok.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"renaissance/internal/chaos"
	"renaissance/internal/core"
	"renaissance/internal/loadgen"
	"renaissance/internal/metrics"
	"renaissance/internal/rdd"
	"renaissance/internal/report"
	"renaissance/internal/rvm"
	"renaissance/internal/stats"

	_ "renaissance/internal/bench/classic"
	_ "renaissance/internal/bench/fn"
	_ "renaissance/internal/bench/oo"
	_ "renaissance/internal/bench/renaissance"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "metrics":
		err = cmdMetrics()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "renaissance:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  renaissance list [-suite name]
  renaissance run [-suite name] [-bench name] [-size f] [-warmup n] [-measured n]
                  [-timeout d] [-retries n] [-fault spec]
                  [-chaos.seed n] [-chaos.rate f] [-chaos.stats] [-json]
                  [-rdd.retries n] [-rdd.speculate]
                  [-rvm.tier auto|0|1] [-rvm.profile]
                  [-openloop.rate r] [-openloop.sweep r1,r2,...] [-openloop.duration d]
  renaissance metrics`)
}

// faultFlags collects repeatable -fault specs of the form
// kind[:benchmark[:iteration]], where kind is delay=DUR, error[=msg], or
// panic[=msg]; benchmark defaults to every benchmark and iteration to
// every steady-state iteration.
type faultFlags struct {
	faults []core.Fault
}

func (f *faultFlags) String() string { return fmt.Sprintf("%d fault(s)", len(f.faults)) }

func (f *faultFlags) Set(spec string) error {
	parts := strings.SplitN(spec, ":", 3)
	fault := core.Fault{Iteration: -1}
	kind, arg := parts[0], ""
	if i := strings.IndexByte(kind, '='); i >= 0 {
		kind, arg = kind[:i], kind[i+1:]
	}
	switch kind {
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return fmt.Errorf("bad -fault delay %q: %w", arg, err)
		}
		fault.Delay = d
	case "error":
		if arg == "" {
			arg = "injected error"
		}
		fault.Err = errors.New(arg)
	case "panic":
		if arg == "" {
			arg = "injected panic"
		}
		fault.Panic = arg
	default:
		return fmt.Errorf("bad -fault kind %q (want delay=DUR, error, or panic)", kind)
	}
	if len(parts) > 1 {
		fault.Benchmark = parts[1]
	}
	if len(parts) > 2 {
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return fmt.Errorf("bad -fault iteration %q: %w", parts[2], err)
		}
		fault.Iteration = n
	}
	f.faults = append(f.faults, fault)
	return nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	suite := fs.String("suite", "", "only list this suite")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t := &report.Table{Headers: []string{"suite", "benchmark", "focus", "description"}}
	for _, s := range core.Global.All() {
		if *suite != "" && s.Suite != *suite {
			continue
		}
		focus := ""
		for i, f := range s.Focus {
			if i > 0 {
				focus += ", "
			}
			focus += f
		}
		t.AddRow(s.Suite, s.Name, focus, s.Description)
	}
	return t.Write(os.Stdout)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	suite := fs.String("suite", "", "only run this suite")
	bench := fs.String("bench", "", "only run this benchmark")
	size := fs.Float64("size", 1.0, "workload size factor")
	warmup := fs.Int("warmup", 0, "override warmup iterations")
	measured := fs.Int("measured", 0, "override measured iterations")
	timeout := fs.Duration("timeout", 0, "override per-benchmark deadline (0 = spec default)")
	retries := fs.Int("retries", 0, "re-run a failed (error/timeout/panic) benchmark up to n times")
	chaosSeed := fs.Int64("chaos.seed", 1, "chaos injection seed (deterministic per seed)")
	chaosRate := fs.Float64("chaos.rate", 0, "chaos injection rate in [0,1); 0 disables injection")
	chaosStats := fs.Bool("chaos.stats", false, "dump per-point chaos trial/fire counts to stderr after the run")
	rddRetries := fs.Int("rdd.retries", -1, "RDD per-partition recompute budget (extra attempts after the first; -1 = engine default)")
	rddSpec := fs.Bool("rdd.speculate", false, "enable RDD straggler speculation (speculative duplicates of slow partitions)")
	var faults faultFlags
	fs.Var(&faults, "fault", "inject a fault: kind[:benchmark[:iteration]], kind = delay=DUR | error[=msg] | panic[=msg] (repeatable)")
	asJSON := fs.Bool("json", false, "emit JSON results")
	openRate := fs.Float64("openloop.rate", 0, "offered load (req/s) for a single open-loop measurement; 0 disables open-loop mode")
	openSweep := fs.String("openloop.sweep", "", "comma-separated offered rates (req/s) for an open-loop saturation sweep")
	openDur := fs.Duration("openloop.duration", time.Second, "offered-load duration per open-loop rate")
	rvmTier := fs.String("rvm.tier", "auto", "RVM execution tier: auto (profile and tier up), 0 (baseline interpreter), 1 (quicken everything)")
	rvmProfile := fs.Bool("rvm.profile", false, "collect the RVM tier-up profile and dump per-opcode/per-call-site stats to stderr after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *rvmTier {
	case "auto":
		rvm.DefaultTier = rvm.TierAuto
	case "0":
		rvm.DefaultTier = rvm.TierBaseline
	case "1":
		rvm.DefaultTier = rvm.TierQuick
	default:
		return fmt.Errorf("bad -rvm.tier %q (want auto, 0, or 1)", *rvmTier)
	}
	if *rvmProfile {
		rvm.ResetProfile()
		rvm.EnableProfiling()
		defer func() {
			rvm.DisableProfiling()
			rvm.WriteProfile(os.Stderr, 10)
		}()
	}

	r := core.NewRunner()
	r.Config.SizeFactor = *size
	r.WarmupOverride = *warmup
	r.MeasuredOverride = *measured
	r.TimeoutOverride = *timeout
	r.RetriesOverride = *retries
	if len(faults.faults) > 0 {
		r.Use(core.NewFaultInjector(faults.faults...))
	}
	if *chaosRate > 0 {
		chaos.Configure(*chaosSeed, *chaosRate)
		fmt.Fprintf(os.Stderr, "renaissance: chaos enabled: seed=%d rate=%g\n",
			chaos.Seed(), chaos.Rate())
	}
	if *rddRetries >= 0 {
		rdd.SetTaskRetries(*rddRetries)
	}
	if *rddSpec {
		rdd.SetSpeculation(true)
	}

	var specs []*core.Spec
	for _, s := range core.Global.All() {
		if *suite != "" && s.Suite != *suite {
			continue
		}
		if *bench != "" && s.Name != *bench {
			continue
		}
		specs = append(specs, s)
	}
	if len(specs) == 0 {
		return fmt.Errorf("no benchmarks match suite=%q bench=%q", *suite, *bench)
	}

	if *openRate > 0 || *openSweep != "" {
		rates, err := parseRates(*openRate, *openSweep)
		if err != nil {
			return err
		}
		return runOpenLoop(specs, r.Config, rates, *openDur, *chaosSeed, *asJSON)
	}

	t := &report.Table{Headers: []string{"suite", "benchmark", "status", "mean ms", "99% CI", "min ms", "max ms", "validated"}}
	var results []*core.Result
	for _, s := range specs {
		// Graceful degradation: record the failure and keep sweeping.
		res, err := r.Run(s)
		results = append(results, res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "renaissance: %s/%s: %s\n", s.Suite, s.Name, firstLine(res.Err))
		}
		if *asJSON {
			if err := res.WriteJSON(os.Stdout); err != nil {
				return err
			}
			continue
		}
		sum := res.Summary()
		ci := "n/a"
		if mean, hw, err := stats.MeanCI(res.Durations, 0.99); err == nil {
			ci = fmt.Sprintf("±%.2f", hw)
			_ = mean
		}
		t.AddRow(s.Suite, s.Name, string(res.Status),
			fmt.Sprintf("%.2f", sum.Mean), ci, fmt.Sprintf("%.2f", sum.Min),
			fmt.Sprintf("%.2f", sum.Max), res.Validated)
	}
	if !*asJSON {
		if err := t.Write(os.Stdout); err != nil {
			return err
		}
	}
	tally := core.TallyResults(results)
	fmt.Fprintf(os.Stderr, "renaissance: %d benchmarks: %s\n", tally.Total(), tally)
	if *chaosStats {
		if err := writeChaosStats(os.Stderr); err != nil {
			return err
		}
	}
	if !tally.AllOK() {
		return fmt.Errorf("%d of %d benchmarks did not complete cleanly",
			tally.Total()-tally.OK, tally.Total())
	}
	return nil
}

// parseRates merges the single-rate and sweep flags into the list of
// offered rates to measure.
func parseRates(rate float64, sweep string) ([]float64, error) {
	var rates []float64
	if rate > 0 {
		rates = append(rates, rate)
	}
	if sweep != "" {
		for _, f := range strings.Split(sweep, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("bad -openloop.sweep rate %q", f)
			}
			rates = append(rates, v)
		}
	}
	if len(rates) == 0 {
		return nil, errors.New("no open-loop rates given")
	}
	return rates, nil
}

// openLoopPoint is the JSON shape of one sweep measurement.
type openLoopPoint struct {
	Rate       float64              `json:"rate"`
	Throughput float64              `json:"throughput"`
	Completed  int64                `json:"completed"`
	Shed       int64                `json:"shed,omitempty"`
	Rejected   int64                `json:"rejected,omitempty"`
	Errors     int64                `json:"errors,omitempty"`
	Dropped    int64                `json:"dropped,omitempty"`
	Latency    *core.LatencySummary `json:"latency"`
}

type openLoopResult struct {
	Benchmark string          `json:"benchmark"`
	Points    []openLoopPoint `json:"points"`
	// Knee is the index into Points of the first saturated rate, -1 when
	// every measured rate is below the knee.
	Knee int `json:"knee"`
}

// runOpenLoop drives every matching benchmark that registered an
// open-loop target through a saturation sweep and renders the per-rate
// percentile ladder with the knee marked. An empty latency histogram at
// any rate is an error — the smoke run in CI relies on the exit code.
func runOpenLoop(specs []*core.Spec, cfg core.Config, rates []float64, dur time.Duration, seed int64, asJSON bool) error {
	ran := false
	for _, s := range specs {
		if !loadgen.HasTarget(s.Name) {
			continue
		}
		ran = true
		factory := func() (loadgen.Target, error) { return loadgen.NewTarget(s.Name, cfg) }
		points, err := loadgen.Sweep(factory, rates, loadgen.Options{Duration: dur, Seed: seed})
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		knee := loadgen.Knee(points, 0)
		out := openLoopResult{Benchmark: s.Name, Points: make([]openLoopPoint, 0, len(points)), Knee: knee}
		rows := make([]report.SweepRow, 0, len(points))
		for i, pt := range points {
			res := pt.Result
			lat := core.SummarizeLatency(res.Hist)
			if lat == nil {
				return fmt.Errorf("%s: empty latency histogram at %g req/s (completed=%d shed=%d rejected=%d errors=%d)",
					s.Name, pt.Rate, res.Completed, res.Shed, res.Rejected, res.Errors)
			}
			out.Points = append(out.Points, openLoopPoint{
				Rate: pt.Rate, Throughput: res.Throughput(),
				Completed: res.Completed, Shed: res.Shed, Rejected: res.Rejected,
				Errors: res.Errors, Dropped: res.Dropped, Latency: lat,
			})
			rows = append(rows, report.SweepRow{
				Rate: pt.Rate, Throughput: res.Throughput(),
				P50: lat.P50Millis, P90: lat.P90Millis, P99: lat.P99Millis, P999: lat.P999Millis,
				Completed: res.Completed, Shed: res.Shed, Rejected: res.Rejected,
				Errors: res.Errors, Dropped: res.Dropped, Knee: i == knee,
			})
		}
		if asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(out); err != nil {
				return err
			}
		} else {
			title := fmt.Sprintf("%s: open-loop sweep (%v per rate, seed %d)", s.Name, dur, seed)
			if err := report.SweepTable(title, rows).Write(os.Stdout); err != nil {
				return err
			}
		}
		if knee >= 0 {
			fmt.Fprintf(os.Stderr, "renaissance: %s saturates at %.0f req/s (p99 diverged from p50)\n",
				s.Name, points[knee].Rate)
		} else {
			fmt.Fprintf(os.Stderr, "renaissance: %s: no saturation knee within the measured rates\n", s.Name)
		}
	}
	if !ran {
		return fmt.Errorf("no matching benchmark registers an open-loop target (have: %s)",
			strings.Join(loadgen.TargetNames(), ", "))
	}
	return nil
}

// writeChaosStats renders every chaos point's trial and fire counts — the
// -chaos.stats audit trail showing which injection points a sweep actually
// exercised (a recovery point with zero trials means the sweep never
// reached that code path).
func writeChaosStats(w io.Writer) error {
	stats := chaos.Stats()
	if len(stats) == 0 {
		fmt.Fprintln(w, "renaissance: chaos stats: no points exercised")
		return nil
	}
	t := &report.Table{Title: "chaos points", Headers: []string{"point", "trials", "fires"}}
	for _, p := range stats {
		t.AddRow(p.Name, strconv.FormatInt(p.Trials, 10), strconv.FormatInt(p.Fires, 10))
	}
	return t.Write(w)
}

// firstLine trims a (possibly multi-line, stack-bearing) error message for
// the per-benchmark progress log; the full text stays in the JSON result.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " ..."
	}
	return s
}

func cmdMetrics() error {
	desc := map[metrics.Metric]string{
		metrics.Synch:      "synchronized (mutex-guarded) sections executed",
		metrics.Wait:       "guarded-block waits (Object.wait analogues)",
		metrics.Notify:     "condition signals (Object.notify analogues)",
		metrics.Atomic:     "atomic memory operations executed",
		metrics.Park:       "goroutine park operations",
		metrics.CPU:        "average CPU utilization (sampled, %)",
		metrics.CacheMiss:  "cache misses (simulated / allocation proxy)",
		metrics.Object:     "objects allocated",
		metrics.Array:      "arrays (slices) allocated",
		metrics.Method:     "dynamically dispatched calls",
		metrics.IDynamic:   "closure dispatches (invokedynamic analogues)",
		metrics.DeadLetter: "undeliverable messages and shed requests (fault path)",
		metrics.StmAbort:     "STM transaction aborts (conflicts and contention)",
		metrics.StmExtend:    "STM read-version timestamp extensions",
		metrics.RddRecompute: "RDD partition recomputes (lineage recovery, fault path)",
		metrics.RddSpec:      "RDD speculative straggler duplicates launched",
	}
	t := &report.Table{Title: "Table 2: characterizing metrics", Headers: []string{"name", "description"}}
	for _, m := range metrics.AllMetrics() {
		t.AddRow(m.String(), desc[m])
	}
	return t.Write(os.Stdout)
}
