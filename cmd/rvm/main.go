// Command rvm drives the RVM compiler substrate directly: it lists the
// benchmark kernels, compiles and runs them under a chosen pipeline with
// individual optimizations toggled, dumps the optimized IR, and compiles
// and runs minilang source files.
//
// Usage:
//
//	rvm list
//	rvm run -suite s -bench b [-scale n] [-pipeline opt|baseline] [-disable o1,o2] [-dump-ir]
//	rvm ml file.ml
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"renaissance/internal/minilang"
	"renaissance/internal/report"
	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
	"renaissance/internal/rvm/jit"
	"renaissance/internal/rvm/kernels"
	"renaissance/internal/rvm/opt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "ml":
		err = cmdML(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rvm list
  rvm run -suite s -bench b [-scale n] [-pipeline opt|baseline] [-disable o1,o2] [-dump-ir]
  rvm ml file.ml`)
}

func cmdList() error {
	t := &report.Table{Headers: []string{"suite", "kernel"}}
	for _, s := range kernels.Specs() {
		t.AddRow(s.Suite, s.Name)
	}
	return t.Write(os.Stdout)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	suite := fs.String("suite", kernels.SuiteRenaissance, "kernel suite")
	bench := fs.String("bench", "", "kernel name")
	scale := fs.Int("scale", 1, "workload scale")
	pipeline := fs.String("pipeline", "opt", "opt or baseline")
	disable := fs.String("disable", "", "comma-separated optimizations to disable")
	dumpIR := fs.Bool("dump-ir", false, "print the optimized IR of the entry function")
	timed := fs.Bool("timed", false, "run in calibrated mode and report wall time")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, ok := kernels.Lookup(*suite, *bench)
	if !ok {
		return fmt.Errorf("no kernel %s/%s (try `rvm list`)", *suite, *bench)
	}
	prog, err := kernels.Build(spec, *scale)
	if err != nil {
		return err
	}

	var pipe *opt.Pipeline
	switch *pipeline {
	case "opt":
		pipe = opt.OptPipeline()
	case "baseline":
		pipe = opt.BaselinePipeline()
	default:
		return fmt.Errorf("unknown pipeline %q", *pipeline)
	}
	if *disable != "" {
		pipe.Disable(strings.Split(*disable, ",")...)
	}

	c, err := jit.Compile(prog, pipe)
	if err != nil {
		return err
	}
	var v rvm.Value
	var st *ir.Stats
	start := time.Now()
	if *timed {
		v, st, err = c.RunCalibrated()
	} else {
		v, st, err = c.Run()
	}
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	fmt.Printf("kernel      %s/%s (scale %d)\n", spec.Suite, spec.Name, *scale)
	fmt.Printf("pipeline    %s\n", pipe)
	fmt.Printf("checksum    %v\n", v)
	fmt.Printf("cycles      %d\n", st.Cycles)
	fmt.Printf("instructions %d\n", st.Executed)
	fmt.Printf("code size   %d IR instructions over %d methods\n", c.CodeSize, c.MethodCount)
	fmt.Printf("compile     %v\n", c.CompileTime)
	if *timed {
		fmt.Printf("wall time   %v (calibrated: proportional to cycles)\n", elapsed)
	}
	if len(st.GuardsExecuted) > 0 {
		fmt.Println("guards:")
		for k, n := range st.GuardsExecuted {
			fmt.Printf("  %-28s %d\n", k, n)
		}
	}
	if *dumpIR {
		if f, ok := c.Prog.Func(c.Prog.Entry); ok {
			fmt.Println()
			fmt.Println(f)
		}
	}
	return nil
}

func cmdML(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("ml needs exactly one source file")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	p, err := minilang.Compile(string(src))
	if err != nil {
		return err
	}
	if p.Entry == nil {
		return fmt.Errorf("%s has no main function", args[0])
	}
	vm := rvm.NewInterp(p)
	v, err := vm.Run()
	if err != nil {
		return err
	}
	fmt.Printf("result %v (executed %d bytecode instructions)\n", v, vm.Counters.Executed)
	return nil
}
